"""Tests for repro.tune: fingerprinting, probing, profiles, precedence,
and the invariance contracts the autotuner leans on.

The perf *numbers* a tuned profile produces are machine-specific and are
asserted in CI's multi-core ``tune-smoke`` job; what this file pins down
is everything that must hold on any machine:

* fingerprints round-trip and key structurally (any field change is a
  new cache file);
* profiles round-trip the on-disk cache, and ``autotune`` reads the
  cache on the second call instead of re-measuring;
* the precedence contract — explicit argument > environment variable >
  tuned profile > static default — at every site that accepts ``tune=``;
* results are bitwise identical across kernel thread counts and between
  pinned and unpinned deployments (so no tuned knob can change answers).
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

from repro import (
    Engine,
    QueryRequest,
    Router,
    Server,
    community_graph,
    create_method,
    kernels,
)
from repro.exceptions import ParameterError
from repro.tune import (
    MachineFingerprint,
    PinningWarning,
    TuneProfile,
    autotune,
    cache_path,
    derive_profile,
    load_cached,
    machine_fingerprint,
    probe_measurements,
)
from repro.tune.profile import PROFILE_SCHEMA


@pytest.fixture(autouse=True)
def isolated_tune_state(monkeypatch, tmp_path):
    """Every test gets its own profile cache and leaves the process-global
    kernel knobs (tile height, thread count) as it found them."""
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune-cache"))
    monkeypatch.delenv("REPRO_KERNEL_TILE", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
    from repro.kernels import tiling

    tile = tiling._tile_rows
    threads = kernels.kernel_threads()
    yield
    kernels.set_tile_rows(tile)
    kernels.set_num_threads(threads)


@pytest.fixture(scope="module")
def probe_graph():
    return community_graph(800, avg_degree=8, num_communities=8, seed=5)


def _measurements(**overrides):
    """A synthetic probe result with a known-best cell per grid."""
    base = {
        "spmm_tile_seconds": {"1024": 3.0, "4096": 1.0, "16384": 2.0},
        # Per-column cost: 64 wins (0.9/64 < 0.5/32 < 2.4/128).
        "spmm_block_seconds": {"32": 0.5, "64": 0.9, "128": 2.4},
        "spmm_thread_seconds": {"1": 4.0, "2": 1.5, "4": 2.0},
        "spmv_seconds": 0.01,
    }
    base.update(overrides)
    return base


def _fingerprint(**overrides):
    fields = dict(
        cpu_model="test-cpu",
        cpu_count=8,
        affinity=tuple(range(8)),
        numa={0: (0, 1, 2, 3), 1: (4, 5, 6, 7)},
        cgroup_quota=None,
        backend="numpy",
        dtype="float64",
        numba_version=None,
        numpy_version="2.0.0",
    )
    fields.update(overrides)
    return MachineFingerprint(**fields)


class TestMachineFingerprint:
    def test_live_fingerprint_round_trips(self):
        fp = machine_fingerprint()
        clone = MachineFingerprint.from_dict(fp.to_dict())
        assert clone == fp
        assert clone.key() == fp.key()

    def test_key_is_stable_and_structural(self):
        a, b = _fingerprint(), _fingerprint()
        assert a.key() == b.key()
        assert a.key() != _fingerprint(backend="numba").key()
        assert a.key() != _fingerprint(affinity=(0, 1)).key()
        assert a.key() != _fingerprint(numpy_version="1.26").key()

    def test_dict_is_json_serializable(self):
        json.dumps(machine_fingerprint().to_dict())

    def test_effective_cpus_capped_by_quota(self):
        assert _fingerprint().effective_cpus() == 8
        assert _fingerprint(cgroup_quota=1.5).effective_cpus() == 1
        assert _fingerprint(cgroup_quota=4.0).effective_cpus() == 4
        assert _fingerprint(affinity=(0, 1)).effective_cpus() == 2

    def test_backend_override(self):
        assert machine_fingerprint(backend="numpy").backend == "numpy"
        assert machine_fingerprint(dtype="float32").dtype == "float32"


class TestProbe:
    def test_measurements_on_live_graph(self, probe_graph):
        result = probe_measurements(
            probe_graph, tile_grid=(1024,), block_grid=(16, 32), repeats=1
        )
        assert result["graph"]["nodes"] == probe_graph.num_nodes
        assert result["graph"]["scaled_standin"] is False
        assert result["spmv_seconds"] > 0
        assert result["topk_seconds"] > 0
        assert set(result["spmm_block_seconds"]) == {"16", "32"}
        assert set(result["spmm_tile_seconds"]) == {"1024"}
        assert all(v > 0 for v in result["spmm_block_seconds"].values())

    def test_synthetic_graph_when_none_given(self):
        result = probe_measurements(
            None, nodes=500, avg_degree=6,
            tile_grid=(1024,), block_grid=(16,), repeats=1,
        )
        assert result["graph"]["nodes"] == 500

    def test_measurements_json_serializable(self):
        result = probe_measurements(
            None, nodes=400, avg_degree=6,
            tile_grid=(1024,), block_grid=(16,), repeats=1,
        )
        json.dumps(result)


class TestDeriveProfile:
    def test_picks_fastest_cells(self):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        assert profile.tile_rows == 4096
        assert profile.stream_block == 64  # per-column argmin, not total
        assert profile.max_batch == 64

    def test_placement_from_numa_topology(self):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        assert profile.shards == 2  # one per NUMA node
        assert profile.workers == 4

    def test_single_node_uses_core_count(self):
        fp = _fingerprint(numa={0: tuple(range(8))})
        assert derive_profile(fp, _measurements(), 1.0).shards == 4
        tiny = _fingerprint(numa={}, affinity=(0,))
        assert derive_profile(tiny, _measurements(), 1.0).shards == 1

    def test_kernel_threads_clamped_to_core_share(self):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        # Measured best is 2 threads; 8 cores / 2 shards leaves 4 — keep 2.
        assert profile.kernel_threads == 2
        starved = _fingerprint(affinity=(0, 1))
        assert derive_profile(
            starved, _measurements(), 1.0
        ).kernel_threads == 1

    def test_wait_clamped_to_sane_window(self):
        slow = _measurements(
            spmm_block_seconds={"32": 5.0, "64": 9.0, "128": 20.0}
        )
        profile = derive_profile(_fingerprint(), slow, 1.0)
        assert profile.max_wait_ms == 8.0  # clamped at the ceiling
        fast = _measurements(
            spmm_block_seconds={"32": 1e-6, "64": 3e-6, "128": 9e-6}
        )
        assert derive_profile(_fingerprint(), fast, 1.0).max_wait_ms == 0.5

    def test_empty_measurements_fall_back_to_defaults(self):
        profile = derive_profile(_fingerprint(), {}, 0.0)
        assert profile.stream_block == 128
        assert profile.kernel_threads is None
        assert profile.tile_rows > 0


class TestProfileCache:
    def test_round_trip_through_disk(self):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        path = profile.save()
        assert path == cache_path(_fingerprint())
        assert TuneProfile.load(path) == profile

    def test_schema_mismatch_rejected(self):
        payload = derive_profile(_fingerprint(), _measurements(), 1.0).to_dict()
        payload["schema"] = "repro-tune-profile/0"
        with pytest.raises(ParameterError, match="schema"):
            TuneProfile.from_dict(payload)

    def test_load_cached_misses(self, tmp_path):
        fp = _fingerprint()
        assert load_cached(fp) is None  # no file
        cache_path(fp).parent.mkdir(parents=True, exist_ok=True)
        cache_path(fp).write_text("{not json")
        assert load_cached(fp) is None  # corrupt file

    def test_renamed_file_cannot_smuggle_stale_knobs(self):
        other = _fingerprint(backend="numba")
        profile = derive_profile(other, _measurements(), 1.0)
        # Write the numba-measured profile where the numpy fingerprint
        # would look for its own.
        profile.save(cache_path(_fingerprint()))
        assert load_cached(_fingerprint()) is None

    def test_autotune_reads_cache_on_second_call(self):
        kwargs = dict(
            nodes=400, avg_degree=6, tile_grid=(1024,),
            block_grid=(16,), repeats=1,
        )
        first = autotune(**kwargs)
        assert cache_path(first.fingerprint).exists()
        second = autotune(**kwargs)
        assert second == first  # byte-identical payload: no re-measure
        forced = autotune(force=True, **kwargs)
        assert forced.fingerprint == first.fingerprint

    def test_autotune_save_false_leaves_no_file(self):
        profile = autotune(
            save=False, nodes=400, avg_degree=6,
            tile_grid=(1024,), block_grid=(16,), repeats=1,
        )
        assert not cache_path(profile.fingerprint).exists()


class TestApplyPrecedence:
    def test_apply_sets_global_knobs(self):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        applied = profile.apply()
        assert applied["tile_rows"] == 4096
        assert kernels.tile_rows() == 4096

    def test_env_variable_beats_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TILE", "2048")
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "1")
        before = kernels.tile_rows()
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        applied = profile.apply()
        assert applied["tile_rows"] == "env-override"
        assert applied["kernel_threads"] == "env-override"
        assert kernels.tile_rows() == before

    def test_explicit_engine_argument_beats_profile(self, probe_graph):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        engine = Engine(method, probe_graph, stream_block=48, tune=profile)
        assert engine.stream_block == 48

    def test_profile_fills_engine_default(self, probe_graph):
        profile = derive_profile(_fingerprint(), _measurements(), 1.0)
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        engine = Engine(method, probe_graph, tune=profile)
        assert engine.stream_block == profile.stream_block


class TestServingWithTune:
    def _profile(self):
        # workers/shards forced to 1 so the tests stay cheap; pin knobs
        # exercised separately.
        return derive_profile(
            _fingerprint(numa={}, affinity=(0,)), _measurements(), 1.0
        )

    def test_server_resolves_knobs_from_profile(self, small_community):
        profile = self._profile()
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with Server(
                method, small_community, tune=profile, pin=False
            ) as server:
                stats = server.stats()
                assert server.workers == profile.workers
                assert stats["max_batch"] == profile.max_batch
                assert stats["max_wait_ms"] == profile.max_wait_ms
                assert server.query(0, k=5).top_nodes.shape == (5,)

    def test_server_explicit_arguments_win(self, small_community):
        profile = self._profile()
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with Server(
            method, small_community, workers=2, max_batch=16,
            max_wait_ms=1.0, tune=profile, pin=False,
        ) as server:
            stats = server.stats()
            assert server.workers == 2
            assert stats["max_batch"] == 16
            assert stats["max_wait_ms"] == 1.0

    def test_router_resolves_knobs_from_profile(self, small_community):
        profile = self._profile()
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with Router(
                method, small_community, tune=profile, pin=False
            ) as router:
                stats = router.stats()
                assert router.num_shards == profile.shards
                assert stats["max_batch"] == profile.max_batch
                assert router.query(0, k=5).top_nodes.shape == (5,)

    def test_router_explicit_shards_win(self, small_community):
        profile = self._profile()
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with Router(
                method, small_community, num_shards=2,
                tune=profile, pin=False,
            ) as router:
                assert router.num_shards == 2


class TestKernelThreadKnob:
    def test_set_and_reset(self):
        previous = kernels.set_num_threads(1)
        try:
            assert kernels.kernel_threads() == 1
        finally:
            kernels.set_num_threads(previous)
        kernels.set_num_threads(None)
        assert kernels.kernel_threads() is None

    def test_invalid_count_rejected(self):
        with pytest.raises(ParameterError):
            kernels.set_num_threads(0)

    def test_env_parse(self, monkeypatch):
        from repro.kernels import backend as kernel_backend

        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        assert kernel_backend._resolve_env_threads() == 3
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "auto")
        assert kernel_backend._resolve_env_threads() is None
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "banana")
        with pytest.warns(UserWarning, match="REPRO_KERNEL_THREADS"):
            assert kernel_backend._resolve_env_threads() is None

    def test_thread_count_not_in_cache_token(self):
        previous = kernels.set_num_threads(1)
        try:
            token_one = kernels.cache_token()
        finally:
            kernels.set_num_threads(previous)
        # Thread count must not invalidate cached vectors: results are
        # bitwise thread-count-invariant, so the token ignores it.
        assert token_one == kernels.cache_token()


@pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)
class TestThreadCountBitwiseInvariance:
    def test_spmm_identical_across_thread_counts(self, probe_graph):
        previous_backend = kernels.get_backend()
        kernels.set_backend("numba")
        try:
            operator = probe_graph.decayed_operator(1.0)
            rng = np.random.default_rng(3)
            mat = rng.random((probe_graph.num_nodes, 16))
            kernels.set_num_threads(1)
            one = kernels.spmm(operator, mat)
            vec_one = kernels.spmv(operator, mat[:, 0].copy())
            kernels.set_num_threads(2)
            many = kernels.spmm(operator, mat)
            vec_many = kernels.spmv(operator, mat[:, 0].copy())
        finally:
            kernels.set_num_threads(None)
            kernels.set_backend(previous_backend)
        np.testing.assert_array_equal(one, many)
        np.testing.assert_array_equal(vec_one, vec_many)

    def test_engine_results_identical_across_thread_counts(self, probe_graph):
        previous_backend = kernels.get_backend()
        kernels.set_backend("numba")
        try:
            seeds = np.arange(24)
            kernels.set_num_threads(1)
            engine_one = Engine(
                create_method("tpa", s_iteration=4, t_iteration=8),
                probe_graph,
            )
            one = engine_one.serve(seeds, k=10)
            kernels.set_num_threads(2)
            engine_many = Engine(
                create_method("tpa", s_iteration=4, t_iteration=8),
                probe_graph,
            )
            many = engine_many.serve(seeds, k=10)
        finally:
            kernels.set_num_threads(None)
            kernels.set_backend(previous_backend)
        np.testing.assert_array_equal(one, many)


class TestPinnedBitwiseInvariance:
    """Pinned and unpinned deployments return identical results (on the
    active backend — CI runs this file under both)."""

    def test_sharded_pinned_matches_serial(self, small_community):
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        engine = Engine(method, small_community)
        seeds = np.arange(32)
        serial = engine.serve(seeds, k=10)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with engine.shard(num_shards=2, pin=True) as sharded:
                pinned = sharded.serve(seeds, k=10)
        np.testing.assert_array_equal(serial, pinned)

    def test_tuned_server_matches_serial_batch(self, small_community):
        profile = autotune(
            save=False, nodes=400, avg_degree=6,
            tile_grid=(1024,), block_grid=(16,), repeats=1,
        )
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            small_community,
        )
        seeds = np.arange(16)
        serial = engine.serve(seeds, k=8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with Server(method, small_community, tune=profile) as server:
                results = server.batch(
                    [QueryRequest(seed=int(s), k=8) for s in seeds]
                )
        tuned = np.stack([r.top_nodes for r in results])
        np.testing.assert_array_equal(serial, tuned)


class TestMachineInReports:
    def test_bench_report_carries_fingerprint(self, small_community):
        from repro.serving import run_closed_loop
        from repro.serving.metrics import REPORT_SCHEMA, bench_report

        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with Server(method, small_community, workers=1, pin=False) as server:
            report = run_closed_loop(
                server, np.arange(8), k=5, clients=2, requests_per_client=4
            )
        document = bench_report(report, kind="serve-bench", config={})
        assert document["schema"] == REPORT_SCHEMA
        assert document["machine"] == machine_fingerprint().to_dict()
        json.dumps(document)


class TestTuneCLI:
    def test_measure_then_cache(self, capsys):
        from repro.cli import main

        argv = ["tune", "--nodes", "400", "--repeats", "1"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "profile         measured" in first
        assert "fingerprint" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "profile         cached" in second

    def test_json_output(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "profile.json"
        assert main([
            "tune", "--nodes", "400", "--repeats", "1",
            "--json", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["fingerprint_key"] == machine_fingerprint().key()

    def test_json_stdout(self, capsys):
        from repro.cli import main

        assert main(["tune", "--nodes", "400", "--repeats", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == PROFILE_SCHEMA

    def test_bench_rejects_bad_profile_path(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "nope.json"
        with pytest.raises(SystemExit, match="cannot load tuned profile"):
            main([
                "serve-bench", "--nodes", "300", "--clients", "1",
                "--requests", "1", "--tuned", str(bad),
            ])
