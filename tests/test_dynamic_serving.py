"""Dynamic graphs under the sharded serving stack.

The acceptance surface of the delta-overlay subsystem at deployment
scale: a :class:`~repro.sharding.Router` keeps answering correctly while
the graph underneath it mutates and compacts (the operator republishes
only the shard stripes the compaction dirtied, under an epoch swap the
in-flight sweep retries across), every worker rebinds onto the new
shared segments, and closing the stack releases every ``/dev/shm``
segment of every store generation.
"""

import os

import numpy as np
import pytest

from repro import (
    CPIMethod,
    Engine,
    Graph,
    QueryRequest,
    Router,
    TPA,
    community_graph,
    cpi,
)
from repro.dynamic import DynamicGraph
from repro.sharding.operator import ShardedOperator
from repro.sharding.plan import ShardPlan
from repro.sharding.store import ShardStore


def _uniform_graph(n=240, seed=5):
    generated = community_graph(n, avg_degree=6, num_communities=4, seed=seed)
    src, dst = generated.edges()
    return Graph(n, src, dst, dangling="uniform")


def _fresh_like(dyn):
    src, dst = dyn.edges()
    return Graph(
        dyn.num_nodes, src, dst, dangling=dyn.dangling_policy
    )


def assert_no_segments(names) -> None:
    for name in names:
        assert not os.path.exists("/dev/shm/" + name.lstrip("/")), name


class TestShardedOperatorDynamic:
    def test_clean_overlay_and_compacted_products(self):
        base = _uniform_graph()
        dyn = DynamicGraph(base)
        plan = ShardPlan.uniform(base.num_nodes, 3)
        rng = np.random.default_rng(2)
        x = rng.random(base.num_nodes)
        with ShardedOperator(dyn, plan) as operator:
            # Clean: the sharded sweep is bitwise the local one.
            assert np.array_equal(operator.propagate(x), base.propagate(x))

            dyn.add_edges([(3, 140), (140, 3), (7, 220)])
            dyn.remove_edges([(3, 140)])
            # Overlay mode: base sweep through the workers plus the same
            # delta fold the local dynamic product applies.
            assert np.array_equal(operator.propagate(x), dyn.propagate(x))
            stats = operator.shard_stats()
            assert stats["republishes"] == 0

            dyn.compact()
            got = operator.propagate(x)
            stats = operator.shard_stats()
            assert stats["republishes"] == 1
            assert stats["published_epoch"] == dyn.base_epoch
            fresh = _fresh_like(dyn)
            assert np.array_equal(got, fresh.propagate(x))
            names = operator._store.segment_names
        assert_no_segments(names)

    def test_decayed_product_across_republish(self):
        base = _uniform_graph(n=180, seed=9)
        dyn = DynamicGraph(base)
        plan = ShardPlan.uniform(base.num_nodes, 2)
        rng = np.random.default_rng(3)
        x = rng.random((base.num_nodes, 4))
        with ShardedOperator(dyn, plan) as operator:
            assert np.array_equal(
                operator.propagate_decayed(x, 0.85),
                base.propagate_decayed(x, 0.85),
            )
            dyn.add_edges([(0, 99), (99, 0)])
            dyn.compact()
            fresh = _fresh_like(dyn)
            assert np.array_equal(
                operator.propagate_decayed(x, 0.85),
                fresh.propagate_decayed(x, 0.85),
            )
            assert operator.shard_stats()["republishes"] == 1
            names = operator._store.segment_names
        assert_no_segments(names)

    def test_multiple_epochs_republish_each_once(self):
        base = _uniform_graph(n=150, seed=1)
        dyn = DynamicGraph(base)
        plan = ShardPlan.uniform(base.num_nodes, 2)
        x = np.linspace(0.0, 1.0, base.num_nodes)
        with ShardedOperator(dyn, plan) as operator:
            for step in range(3):
                dyn.add_edges([(step, 100 + step)])
                dyn.compact()
                fresh = _fresh_like(dyn)
                assert np.array_equal(
                    operator.propagate(x), fresh.propagate(x)
                )
            assert operator.shard_stats()["republishes"] == 3
            names = operator._store.segment_names
        assert_no_segments(names)


class TestPartialRepublishStore:
    def test_partial_build_matches_full_rebuild(self):
        before = _uniform_graph(n=200, seed=4)
        dyn = DynamicGraph(before)
        plan = ShardPlan.uniform(200, 4)
        old = ShardStore.build(before, plan)
        try:
            dyn.add_edges([(0, 150), (150, 0)])
            rows = dyn.compact()
            after = _fresh_like(dyn)
            begins = np.array(
                [plan.shard_rows(s)[0] for s in range(plan.num_shards)]
            )
            dirty = np.unique(np.searchsorted(begins, rows, side="right") - 1)
            assert 0 < dirty.size < plan.num_shards
            partial = ShardStore.build(
                after, plan, previous=old, dirty_shards=dirty
            )
            full = ShardStore.build(after, plan)
            try:
                for shard in range(plan.num_shards):
                    got = partial.stripe_arrays(shard)
                    want = full.stripe_arrays(shard)
                    assert got.nnz == want.nnz
                    for part in ("indptr", "indices", "data"):
                        assert np.array_equal(
                            getattr(got, part), getattr(want, part)
                        )
            finally:
                partial.close()
                full.close()
        finally:
            old.close()
        assert_no_segments(old.segment_names)

    def test_partial_build_rejects_closed_previous(self):
        graph = _uniform_graph(n=100, seed=6)
        plan = ShardPlan.uniform(100, 2)
        store = ShardStore.build(graph, plan)
        store.close()
        with pytest.raises(Exception):
            ShardStore.build(
                graph, plan, previous=store, dirty_shards=[0]
            )


class TestRouterDynamic:
    def test_router_across_mutations_and_compaction(self):
        base = _uniform_graph(n=260, seed=7)
        dyn = DynamicGraph(base)
        requests = [QueryRequest(seed=s, k=8) for s in range(12)]
        all_names = []
        with Router(
            CPIMethod(), dyn, num_shards=2, max_batch=8, max_wait_ms=1.0,
        ) as router:
            store = router.engine.shards._store
            all_names.extend(store.segment_names)

            def oracle():
                return Engine(CPIMethod(), _fresh_like(dyn)).batch(requests)

            def check_bitwise():
                got = router.batch(requests)
                want = oracle()
                for expected, actual in zip(want, got):
                    np.testing.assert_array_equal(
                        expected.top_nodes, actual.top_nodes
                    )
                    np.testing.assert_array_equal(
                        expected.top_scores, actual.top_scores
                    )

            check_bitwise()

            dyn.add_edges([(1, 200), (200, 1), (30, 250)])
            # Overlay mode: approximate tier, ids still agree with the
            # rebuilt oracle well inside the documented tolerance.
            got = router.batch([QueryRequest(seed=1)])[0].scores
            want = cpi(dyn, seeds=1).scores
            assert np.abs(got - want).sum() <= 1e-8

            dyn.compact()
            check_bitwise()
            stats = router.engine.stats()["shards"]
            assert stats["republishes"] >= 1
            assert stats["published_epoch"] == dyn.base_epoch
            all_names.extend(router.engine.shards._store.segment_names)
        assert_no_segments(all_names)

    def test_router_tpa_re_preprocesses_on_epoch_change(self):
        base = _uniform_graph(n=220, seed=8)
        dyn = DynamicGraph(base)
        method = TPA(s_iteration=4, t_iteration=8)
        with Router(
            method, dyn, num_shards=2, max_batch=8,
        ) as router:
            router.batch([QueryRequest(seed=0, k=10)])
            dyn.add_edges([(0, 180), (180, 0)])
            dyn.compact()
            got = router.batch([QueryRequest(seed=0, k=10)])[0]
            fresh = TPA(s_iteration=4, t_iteration=8)
            want = Engine(fresh, _fresh_like(dyn)).batch(
                [QueryRequest(seed=0, k=10)]
            )[0]
            # Warm re-preprocess: same ids, scores inside the warm band.
            assert set(got.top_nodes.tolist()) == set(want.top_nodes.tolist())
            assert np.abs(got.top_scores - want.top_scores).max() <= 1e-6
            names = router.engine.shards._store.segment_names
        assert_no_segments(names)

    def test_router_cache_disabled_path(self):
        base = _uniform_graph(n=140, seed=10)
        dyn = DynamicGraph(base)
        with Router(
            CPIMethod(), dyn, num_shards=2, cache_size=0,
        ) as router:
            first = router.batch([QueryRequest(seed=3)])[0].scores
            dyn.add_edges([(3, 120)])
            dyn.compact()
            second = router.batch([QueryRequest(seed=3)])[0].scores
            assert not np.array_equal(first, second)
            want = cpi(dyn, seeds=3).scores
            assert np.abs(second - want).sum() <= 2 * 1e-9 / 0.15
            names = router.engine.shards._store.segment_names
        assert_no_segments(names)
