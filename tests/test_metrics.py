"""Unit tests for repro.metrics (accuracy, memory, timing)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.metrics.accuracy import (
    l1_error,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    top_k,
)
from repro.metrics.memory import MemoryBudget, format_bytes, sparse_nbytes
from repro.metrics.timing import Timer, time_callable


class TestL1Error:
    def test_zero_for_identical(self):
        x = np.array([0.1, 0.9])
        assert l1_error(x, x) == 0.0

    def test_simple_difference(self):
        assert l1_error(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 2.0

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            l1_error(np.zeros(3), np.zeros(4))


class TestTopK:
    def test_descending_order(self):
        scores = np.array([0.1, 0.5, 0.3])
        assert top_k(scores, 3).tolist() == [1, 2, 0]

    def test_tie_break_lowest_id_first(self):
        scores = np.array([0.5, 0.5, 0.1])
        assert top_k(scores, 2).tolist() == [0, 1]

    def test_k_larger_than_n(self):
        assert top_k(np.array([1.0, 2.0]), 10).size == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ParameterError):
            top_k(np.array([1.0]), 0)


class TestRecall:
    def test_perfect(self):
        exact = np.array([0.4, 0.3, 0.2, 0.1])
        assert recall_at_k(exact, exact, 2) == 1.0

    def test_half(self):
        exact = np.array([0.4, 0.3, 0.2, 0.1])
        approx = np.array([0.4, 0.1, 0.2, 0.3])
        assert recall_at_k(exact, approx, 2) == 0.5

    def test_k_exceeding_n_degrades_to_full_overlap(self):
        exact = np.array([0.4, 0.6])
        approx = np.array([0.6, 0.4])
        assert recall_at_k(exact, approx, 5) == 1.0

    def test_precision_equals_recall_here(self):
        exact = np.array([0.4, 0.3, 0.2, 0.1])
        approx = np.array([0.4, 0.1, 0.2, 0.3])
        assert precision_at_k(exact, approx, 2) == recall_at_k(exact, approx, 2)


class TestNDCG:
    def test_perfect_ranking(self):
        exact = np.array([0.5, 0.3, 0.2])
        assert ndcg_at_k(exact, exact, 3) == pytest.approx(1.0)

    def test_worse_ranking_scores_lower(self):
        exact = np.array([0.5, 0.3, 0.2, 0.0])
        reversed_scores = exact[::-1].copy()
        assert ndcg_at_k(exact, reversed_scores, 4) < 1.0

    def test_zero_relevance(self):
        assert ndcg_at_k(np.zeros(3), np.zeros(3), 3) == 0.0


class TestMemoryBudget:
    def test_allows_within(self):
        budget = MemoryBudget(1000)
        budget.check("m", 999)
        assert budget.allows(1000)

    def test_raises_over(self):
        budget = MemoryBudget(1000)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            budget.check("m", 1001)
        assert excinfo.value.method == "m"
        assert excinfo.value.required_bytes == 1001

    def test_positive_limit_required(self):
        with pytest.raises(ParameterError):
            MemoryBudget(0)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2.0 KB"),
            (5 * 1024 * 1024, "5.0 MB"),
            (3 * 1024**3, "3.0 GB"),
        ],
    )
    def test_rendering(self, value, expected):
        assert format_bytes(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            format_bytes(-1)


class TestSparseNbytes:
    def test_csr(self):
        matrix = sp.csr_array(np.eye(10))
        expected = (
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        )
        assert sparse_nbytes(matrix) == expected

    def test_coo(self):
        matrix = sp.coo_array(np.eye(4))
        assert sparse_nbytes(matrix) > 0

    def test_unsupported(self):
        with pytest.raises(ParameterError):
            sparse_nbytes("not a matrix")


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.seconds >= 0.0

    def test_time_callable_stats(self):
        result, stats = time_callable(lambda: 42, repeats=5)
        assert result == 42
        assert stats.repeats == 5
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_time_callable_median_even(self):
        _, stats = time_callable(lambda: None, repeats=4)
        assert stats.median >= 0.0

    def test_repeats_positive(self):
        with pytest.raises(ParameterError):
            time_callable(lambda: None, repeats=0)
