"""Property-based tests (hypothesis) for the core invariants.

These exercise the paper's lemmas on arbitrary generated graphs and
parameters rather than fixed fixtures:

* column stochasticity of the propagation operator,
* the exact interim-norm law ``‖x(i)‖₁ = c(1-c)^i`` and Lemma 2 norms,
* the Theorem 2 bound for TPA on any graph/seed/parameter combination,
* forward-push mass conservation,
* metric sanity (recall bounds, L1 symmetry).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.forward_push import forward_push
from repro.core.bounds import family_norm, neighbor_norm, stranger_norm, total_bound
from repro.core.cpi import cpi, cpi_parts
from repro.core.tpa import TPA
from repro.graph.generators import community_graph, gnm_random_graph
from repro.metrics.accuracy import l1_error, recall_at_k
from repro.ranking.rwr import rwr_direct

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _graph_strategy():
    """Random small graphs: either community-structured or ER."""
    return st.builds(
        lambda kind, n, d, seed: (
            community_graph(n, avg_degree=d, num_communities=4, seed=seed)
            if kind
            else gnm_random_graph(n, n * d, seed=seed)
        ),
        st.booleans(),
        st.integers(min_value=20, max_value=120),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )


class TestStochasticity:
    @_SETTINGS
    @given(graph=_graph_strategy(), seed=st.integers(0, 10_000))
    def test_propagate_preserves_mass(self, graph, seed):
        rng = np.random.default_rng(seed)
        x = rng.random(graph.num_nodes)
        y = graph.propagate(x)
        assert y.sum() == pytest.approx(x.sum(), rel=1e-9)
        assert (y >= 0).all()

    @_SETTINGS
    @given(
        graph=_graph_strategy(),
        c=st.floats(min_value=0.05, max_value=0.9),
        i=st.integers(min_value=0, max_value=12),
    )
    def test_interim_norm_law(self, graph, c, i):
        """‖x(i)‖₁ = c (1-c)^i for any graph and seed (Lemma 2's engine)."""
        result = cpi(graph, 0, c=c, start_iteration=i, terminal_iteration=i,
                     tol=1e-300, max_iterations=10_000)
        assert result.scores.sum() == pytest.approx(c * (1 - c) ** i, rel=1e-9)


class TestLemma2:
    @_SETTINGS
    @given(
        graph=_graph_strategy(),
        c=st.floats(min_value=0.05, max_value=0.5),
        s=st.integers(min_value=1, max_value=6),
        gap=st.integers(min_value=0, max_value=8),
    )
    def test_part_norms(self, graph, c, s, gap):
        t = s + gap
        family, neighbor, stranger = cpi_parts(graph, 0, s, t, c=c, tol=1e-12)
        assert family.sum() == pytest.approx(family_norm(c, s), abs=1e-9)
        assert neighbor.sum() == pytest.approx(neighbor_norm(c, s, t), abs=1e-9)
        assert stranger.sum() == pytest.approx(stranger_norm(c, t), abs=1e-8)


class TestTheorem2:
    @_SETTINGS
    @given(
        graph=_graph_strategy(),
        s=st.integers(min_value=1, max_value=6),
        gap=st.integers(min_value=1, max_value=8),
        seed_fraction=st.floats(min_value=0.0, max_value=0.999),
    )
    def test_tpa_error_within_bound(self, graph, s, gap, seed_fraction):
        seed = int(seed_fraction * graph.num_nodes)
        method = TPA(s_iteration=s, t_iteration=s + gap)
        method.preprocess(graph)
        exact = rwr_direct(graph, seed)
        error = l1_error(exact, method.query(seed))
        assert error <= total_bound(0.15, s) + 1e-8


class TestForwardPushInvariants:
    @_SETTINGS
    @given(
        graph=_graph_strategy(),
        rmax=st.floats(min_value=1e-5, max_value=1e-2),
        seed_fraction=st.floats(min_value=0.0, max_value=0.999),
    )
    def test_mass_conservation(self, graph, rmax, seed_fraction):
        seed = int(seed_fraction * graph.num_nodes)
        result = forward_push(graph, seed, rmax=rmax)
        total = result.estimate.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)
        assert (result.estimate >= 0).all()
        assert (result.residual >= -1e-15).all()


class TestMetricProperties:
    @_SETTINGS
    @given(
        data=st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=2,
            max_size=50,
        ),
        k=st.integers(min_value=1, max_value=20),
    )
    def test_recall_bounds(self, data, k):
        exact = np.asarray(data)
        rng = np.random.default_rng(0)
        approx = rng.permutation(exact)
        value = recall_at_k(exact, approx, k)
        assert 0.0 <= value <= 1.0
        assert recall_at_k(exact, exact, k) == 1.0

    @_SETTINGS
    @given(
        data=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_l1_symmetry_and_identity(self, data):
        x = np.asarray(data)
        y = x[::-1].copy()
        assert l1_error(x, y) == pytest.approx(l1_error(y, x))
        assert l1_error(x, x) == 0.0
