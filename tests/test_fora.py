"""Unit tests for the FORA baseline."""

import numpy as np
import pytest

from repro.baselines.fora import Fora
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(medium_community):
    method = Fora(seed=0)
    method.preprocess(medium_community)
    return method


class TestFora:
    def test_index_built(self, prepared):
        assert prepared.preprocessed_bytes() > 0

    def test_accuracy(self, prepared, medium_community):
        exact = rwr_direct(medium_community, 6)
        approx = prepared.query(6)
        assert np.abs(exact - approx).sum() < 0.2

    def test_high_recall(self, prepared, medium_community):
        exact = rwr_direct(medium_community, 6)
        approx = prepared.query(6)
        assert recall_at_k(exact, approx, 100) >= 0.9

    def test_scores_sum_near_one(self, prepared):
        assert prepared.query(0).sum() == pytest.approx(1.0, abs=0.05)

    def test_no_index_variant(self, medium_community):
        method = Fora(use_index=False, seed=0)
        method.preprocess(medium_community)
        assert method.preprocessed_bytes() == 0
        exact = rwr_direct(medium_community, 8)
        approx = method.query(8)
        assert recall_at_k(exact, approx, 100) >= 0.9

    def test_index_and_no_index_similar_quality(self, medium_community):
        exact = rwr_direct(medium_community, 10)
        indexed = Fora(use_index=True, seed=1)
        indexed.preprocess(medium_community)
        online = Fora(use_index=False, seed=1)
        online.preprocess(medium_community)
        err_indexed = np.abs(exact - indexed.query(10)).sum()
        err_online = np.abs(exact - online.query(10)).sum()
        assert abs(err_indexed - err_online) < 0.15

    def test_smaller_epsilon_more_walks(self, small_community):
        loose = Fora(epsilon=1.0, seed=0)
        loose.preprocess(small_community)
        tight = Fora(epsilon=0.25, seed=0)
        tight.preprocess(small_community)
        assert tight.preprocessed_bytes() > loose.preprocessed_bytes()

    def test_memory_budget_enforced(self, medium_community):
        method = Fora(memory_budget_bytes=100, seed=0)
        with pytest.raises(MemoryBudgetExceeded):
            method.preprocess(medium_community)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            Fora(epsilon=0.0)
        with pytest.raises(ParameterError):
            Fora(c=0.0)

    def test_deterministic_given_seed(self, small_community):
        a = Fora(seed=5)
        a.preprocess(small_community)
        b = Fora(seed=5)
        b.preprocess(small_community)
        np.testing.assert_allclose(a.query(3), b.query(3))
