"""Unit tests for repro.graph.partition."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph.partition import partition_graph, partition_order


class TestPartitionGraph:
    def test_label_range(self, small_community):
        labels = partition_graph(small_community, 10, seed=0)
        assert labels.shape == (small_community.num_nodes,)
        assert labels.min() >= 0
        assert labels.max() < 10

    def test_every_label_nonempty(self, small_community):
        labels = partition_graph(small_community, 10, seed=0)
        counts = np.bincount(labels, minlength=10)
        assert (counts > 0).all()

    def test_size_cap(self, small_community):
        k = 10
        labels = partition_graph(small_community, k, seed=0)
        counts = np.bincount(labels, minlength=k)
        cap = 2 * int(np.ceil(small_community.num_nodes / k))
        assert counts.max() <= cap

    def test_single_partition(self, small_community):
        labels = partition_graph(small_community, 1, seed=0)
        assert (labels == 0).all()

    def test_deterministic(self, small_community):
        a = partition_graph(small_community, 8, seed=5)
        b = partition_graph(small_community, 8, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_captures_planted_communities(self):
        from repro.graph.generators import community_graph

        graph = community_graph(
            300, avg_degree=10, num_communities=6, p_in=0.95, seed=4
        )
        labels = partition_graph(graph, 6, seed=0)
        src, dst = graph.edges()
        same = (labels[src] == labels[dst]).mean()
        # With strong planted structure, most edges are within partitions.
        assert same > 0.5

    def test_invalid_count(self, small_community):
        with pytest.raises(ParameterError):
            partition_graph(small_community, 0)
        with pytest.raises(ParameterError):
            partition_graph(small_community, small_community.num_nodes + 1)

    def test_n_partitions_equals_n(self):
        from repro.graph.generators import ring_graph

        graph = ring_graph(8)
        labels = partition_graph(graph, 8, seed=0)
        counts = np.bincount(labels, minlength=8)
        assert (counts == 1).all()

    def test_explicit_generator_matches_seed(self, small_community):
        """An explicit Generator threads through the whole pass — the
        merge/split rebalancing included — identically to the plain
        seed, so callers can hand one RNG through larger pipelines."""
        from_seed = partition_graph(small_community, 8, seed=5)
        from_generator = partition_graph(
            small_community, 8, seed=np.random.default_rng(5)
        )
        np.testing.assert_array_equal(from_seed, from_generator)

    def test_deterministic_across_processes(self):
        """Regression (sharding prerequisite): two separate interpreter
        processes given the same graph and seed must derive identical
        labels — shard boundaries cut on partition frontiers are only
        consistent if every process agrees on them."""
        script = (
            "import numpy as np\n"
            "from repro.graph.generators import community_graph\n"
            "from repro.graph.partition import partition_graph\n"
            "graph = community_graph(300, avg_degree=8,"
            " num_communities=6, seed=4)\n"
            "labels = partition_graph(graph, 6, seed=5)\n"
            "print(','.join(map(str, labels.tolist())))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = {**os.environ, "PYTHONHASHSEED": "random"}
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        outputs = []
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]
        here = partition_graph(
            __import__("repro.graph.generators",
                       fromlist=["community_graph"]).community_graph(
                300, avg_degree=8, num_communities=6, seed=4
            ),
            6, seed=5,
        )
        assert outputs[0] == ",".join(map(str, here.tolist()))


class TestPartitionOrder:
    def test_groups_are_contiguous(self, small_community):
        labels = partition_graph(small_community, 8, seed=0)
        permutation, starts = partition_order(labels)
        ordered = labels[permutation]
        # Each partition occupies one contiguous run.
        assert (np.diff(ordered) >= 0).all()
        assert starts[0] == 0
        np.testing.assert_array_equal(
            np.sort(permutation), np.arange(small_community.num_nodes)
        )
        # One start per non-empty label, at the run frontiers.
        boundaries = np.flatnonzero(np.diff(ordered) != 0) + 1
        np.testing.assert_array_equal(starts[1:], boundaries)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            partition_order(np.empty(0, dtype=np.int64))
