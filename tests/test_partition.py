"""Unit tests for repro.graph.partition."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph.partition import partition_graph


class TestPartitionGraph:
    def test_label_range(self, small_community):
        labels = partition_graph(small_community, 10, seed=0)
        assert labels.shape == (small_community.num_nodes,)
        assert labels.min() >= 0
        assert labels.max() < 10

    def test_every_label_nonempty(self, small_community):
        labels = partition_graph(small_community, 10, seed=0)
        counts = np.bincount(labels, minlength=10)
        assert (counts > 0).all()

    def test_size_cap(self, small_community):
        k = 10
        labels = partition_graph(small_community, k, seed=0)
        counts = np.bincount(labels, minlength=k)
        cap = 2 * int(np.ceil(small_community.num_nodes / k))
        assert counts.max() <= cap

    def test_single_partition(self, small_community):
        labels = partition_graph(small_community, 1, seed=0)
        assert (labels == 0).all()

    def test_deterministic(self, small_community):
        a = partition_graph(small_community, 8, seed=5)
        b = partition_graph(small_community, 8, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_captures_planted_communities(self):
        from repro.graph.generators import community_graph

        graph = community_graph(
            300, avg_degree=10, num_communities=6, p_in=0.95, seed=4
        )
        labels = partition_graph(graph, 6, seed=0)
        src, dst = graph.edges()
        same = (labels[src] == labels[dst]).mean()
        # With strong planted structure, most edges are within partitions.
        assert same > 0.5

    def test_invalid_count(self, small_community):
        with pytest.raises(ParameterError):
            partition_graph(small_community, 0)
        with pytest.raises(ParameterError):
            partition_graph(small_community, small_community.num_nodes + 1)

    def test_n_partitions_equals_n(self):
        from repro.graph.generators import ring_graph

        graph = ring_graph(8)
        labels = partition_graph(graph, 8, seed=0)
        counts = np.bincount(labels, minlength=8)
        assert (counts == 1).all()
