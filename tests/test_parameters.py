"""Unit tests for repro.core.parameters — S/T selection and sweeps."""

import math

import pytest

from repro.core.parameters import select_parameters, sweep_s, sweep_t
from repro.exceptions import ParameterError


class TestSweepS:
    def test_points_returned_in_order(self, small_community):
        points = sweep_s(small_community, [2, 3, 4], t_iteration=8, num_seeds=3)
        assert [p.value for p in points] == [2, 3, 4]

    def test_error_decreases_with_s(self, small_community):
        points = sweep_s(small_community, [2, 6], t_iteration=8, num_seeds=5)
        assert points[0].l1_error > points[-1].l1_error

    def test_times_positive(self, small_community):
        points = sweep_s(small_community, [3], t_iteration=8, num_seeds=2)
        assert points[0].online_seconds > 0

    def test_s_must_stay_below_t(self, small_community):
        with pytest.raises(ParameterError):
            sweep_s(small_community, [8], t_iteration=8)


class TestSweepT:
    def test_points_returned_in_order(self, small_community):
        points = sweep_t(small_community, [6, 8, 10], s_iteration=5, num_seeds=3)
        assert [p.value for p in points] == [6, 8, 10]

    def test_stranger_error_decreases_with_t(self, small_community):
        points = sweep_t(small_community, [6, 20], s_iteration=5, num_seeds=5)
        assert points[0].stranger_error > points[-1].stranger_error

    def test_neighbor_error_increases_with_t(self, small_community):
        points = sweep_t(small_community, [6, 20], s_iteration=5, num_seeds=5)
        assert points[0].neighbor_error < points[-1].neighbor_error

    def test_t_equals_s_allowed(self, small_community):
        points = sweep_t(small_community, [5], s_iteration=5, num_seeds=2)
        assert points[0].neighbor_error == pytest.approx(0.0)

    def test_t_below_s_rejected(self, small_community):
        with pytest.raises(ParameterError):
            sweep_t(small_community, [4], s_iteration=5)

    def test_online_seconds_nan_for_t_sweep(self, small_community):
        points = sweep_t(small_community, [6], s_iteration=5, num_seeds=2)
        assert math.isnan(points[0].online_seconds)


class TestSelectParameters:
    def test_s_satisfies_target_bound(self, small_community):
        target = 0.3
        s, t = select_parameters(small_community, target_error=target, num_seeds=2)
        assert 2 * 0.85**s <= target
        assert t >= s

    def test_tighter_target_needs_larger_s(self, small_community):
        s_loose, _ = select_parameters(
            small_community, target_error=0.8, num_seeds=2
        )
        s_tight, _ = select_parameters(
            small_community, target_error=0.1, num_seeds=2
        )
        assert s_tight > s_loose

    def test_candidate_override(self, small_community):
        _, t = select_parameters(
            small_community, target_error=0.5, t_candidates=[9], num_seeds=2
        )
        assert t == 9

    def test_invalid_target(self, small_community):
        with pytest.raises(ParameterError):
            select_parameters(small_community, target_error=0.0)
        with pytest.raises(ParameterError):
            select_parameters(small_community, target_error=2.5)
