"""Unit tests for repro.graph.graph.Graph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DanglingNodeError, GraphFormatError
from repro.graph.graph import Graph


class TestConstruction:
    def test_basic_edge_counts(self, line_graph):
        assert line_graph.num_nodes == 4
        assert line_graph.num_edges == 4

    def test_duplicate_edges_collapse(self):
        graph = Graph(3, [0, 0, 0, 1, 2], [1, 1, 1, 2, 0])
        assert graph.num_edges == 3
        assert graph.adjacency[0, 1] == 1.0

    def test_self_loops_removed_by_default(self):
        graph = Graph(3, [0, 1, 1, 2], [1, 1, 2, 0])
        assert graph.num_edges == 3
        assert graph.adjacency[1, 1] == 0.0

    def test_self_loops_kept_when_requested(self):
        graph = Graph(2, [0, 1, 1], [1, 1, 0], keep_self_loops=True)
        assert graph.adjacency[1, 1] == 1.0

    def test_from_edges(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert graph.num_edges == 3

    def test_from_edges_empty_requires_policy(self):
        with pytest.raises(DanglingNodeError):
            Graph.from_edges(2, [])

    def test_from_scipy(self):
        matrix = sp.csr_array(np.array([[0, 1.0], [1.0, 0]]))
        graph = Graph.from_scipy(matrix)
        assert graph.num_edges == 2

    def test_from_scipy_rejects_non_square(self):
        with pytest.raises(GraphFormatError):
            Graph.from_scipy(sp.csr_array(np.ones((2, 3))))

    def test_zero_nodes_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(0, [], [])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(2, [0], [5])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(2, [-1], [0])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(3, [0, 1], [1])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(3, np.array([[0, 1]]), np.array([[1, 2]]))


class TestDegrees:
    def test_out_degree(self, line_graph):
        assert line_graph.out_degree.tolist() == [1.0, 1.0, 1.0, 1.0]

    def test_in_degree(self, tiny_star):
        # Hub 0 receives an edge from every spoke.
        assert tiny_star.in_degree[0] == tiny_star.num_nodes - 1

    def test_degree_sums_match_edge_count(self, small_community):
        assert small_community.out_degree.sum() == small_community.num_edges
        assert small_community.in_degree.sum() == small_community.num_edges


class TestDanglingPolicies:
    def test_error_policy_raises(self):
        with pytest.raises(DanglingNodeError):
            Graph(3, [0, 1], [1, 2], dangling="error")

    def test_selfloop_policy_adds_loop(self, dangling_graph_selfloop):
        graph = dangling_graph_selfloop
        assert graph.dangling_nodes.size == 0
        assert graph.adjacency[2, 2] == 1.0

    def test_uniform_policy_keeps_node_dangling(self, dangling_graph_uniform):
        assert dangling_graph_uniform.dangling_nodes.tolist() == [2]

    def test_uniform_propagate_conserves_mass(self, dangling_graph_uniform):
        x = np.array([0.2, 0.3, 0.5])
        y = dangling_graph_uniform.propagate(x)
        assert y.sum() == pytest.approx(1.0)

    def test_selfloop_propagate_conserves_mass(self, dangling_graph_selfloop):
        x = np.array([0.2, 0.3, 0.5])
        y = dangling_graph_selfloop.propagate(x)
        assert y.sum() == pytest.approx(1.0)


class TestPropagate:
    def test_column_stochastic(self, small_community):
        """Ã^T preserves L1 mass of non-negative vectors."""
        rng = np.random.default_rng(1)
        x = rng.random(small_community.num_nodes)
        y = small_community.propagate(x)
        assert y.sum() == pytest.approx(x.sum())

    def test_matches_matrix_product(self, small_community):
        rng = np.random.default_rng(2)
        x = rng.random(small_community.num_nodes)
        expected = small_community.transition_transpose @ x
        np.testing.assert_allclose(small_community.propagate(x), expected)

    def test_ring_rotation(self, tiny_ring):
        x = np.zeros(10)
        x[0] = 1.0
        y = tiny_ring.propagate(x)
        assert y[1] == pytest.approx(1.0)
        assert y.sum() == pytest.approx(1.0)

    def test_transition_rows_sum_to_one(self, small_community):
        sums = np.asarray(small_community.transition.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0)


class TestStructuralHelpers:
    def test_out_neighbors(self, line_graph):
        assert line_graph.out_neighbors(0).tolist() == [1]

    def test_in_neighbors(self, line_graph):
        assert line_graph.in_neighbors(1).tolist() == [0]

    def test_edges_round_trip(self, small_community):
        src, dst = small_community.edges()
        rebuilt = Graph(small_community.num_nodes, src, dst)
        assert rebuilt.num_edges == small_community.num_edges

    def test_undirected_view_symmetric(self, small_community):
        sym = small_community.undirected_view()
        diff = (sym - sym.T)
        assert abs(diff).sum() == 0

    def test_reverse_swaps_degrees(self, tiny_star):
        reversed_graph = tiny_star.reverse()
        np.testing.assert_array_equal(
            reversed_graph.out_degree, tiny_star.in_degree
        )

    def test_nbytes_positive(self, small_community):
        assert small_community.nbytes() > 0


class TestPermute:
    def test_identity_permutation(self, line_graph):
        perm = np.arange(4)
        permuted = line_graph.permute(perm)
        np.testing.assert_array_equal(
            permuted.adjacency.toarray(), line_graph.adjacency.toarray()
        )

    def test_permutation_preserves_edge_count(self, small_community):
        rng = np.random.default_rng(3)
        perm = rng.permutation(small_community.num_nodes)
        permuted = small_community.permute(perm)
        assert permuted.num_edges == small_community.num_edges

    def test_permutation_relabels_correctly(self):
        graph = Graph(3, [0], [1], dangling="selfloop")
        # New order: old node 2 first, then 0, then 1.
        permuted = graph.permute(np.array([2, 0, 1]))
        # Old edge 0->1 becomes 1->2.
        assert permuted.adjacency[1, 2] == 1.0

    def test_invalid_permutation_rejected(self, line_graph):
        with pytest.raises(GraphFormatError):
            line_graph.permute(np.array([0, 0, 1, 2]))


class TestSubgraph:
    def test_induced_subgraph(self, small_community):
        nodes = np.arange(50)
        sub, mapping = small_community.subgraph(nodes)
        assert sub.num_nodes == 50
        np.testing.assert_array_equal(mapping, nodes)

    def test_subgraph_edges_are_induced(self):
        graph = Graph(4, [0, 1, 2, 3], [1, 2, 3, 0])
        sub, _ = graph.subgraph(np.array([0, 1]))
        # Only 0->1 survives; node 1 becomes dangling and gets a self-loop.
        assert sub.adjacency[0, 1] == 1.0
        assert sub.adjacency[1, 1] == 1.0
