"""Unit tests for the FAST-PPR pair-PPR baseline."""

import numpy as np
import pytest

from repro.baselines.fastppr import FastPPR
from repro.exceptions import ParameterError
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(small_community):
    method = FastPPR(seed=0, max_walks=40_000)
    method.preprocess(small_community)
    return method


class TestFastPPR:
    def test_pair_estimate_for_seed_itself(self, prepared, small_community):
        source = 5
        exact = rwr_direct(small_community, source)
        estimate = prepared.query_pair(source, source)
        assert estimate == pytest.approx(exact[source], rel=0.2)

    def test_top_pairs_tracked(self, prepared, small_community):
        source = 5
        exact = rwr_direct(small_community, source)
        for target in np.argsort(-exact)[:5]:
            estimate = prepared.query_pair(source, int(target))
            assert estimate == pytest.approx(exact[target], abs=0.02)

    def test_frontier_threshold_scales_with_delta(self, small_community):
        coarse = FastPPR(delta=1e-2, seed=0)
        coarse.preprocess(small_community)
        fine = FastPPR(delta=1e-6, seed=0)
        fine.preprocess(small_community)
        assert fine._epsilon_r < coarse._epsilon_r
        assert fine._num_walks >= coarse._num_walks

    def test_whole_vector_topk(self, small_community):
        method = FastPPR(seed=0, max_walks=20_000)
        method.preprocess(small_community)
        from repro.metrics.accuracy import recall_at_k

        exact = rwr_direct(small_community, 7)
        approx = method.query(7)
        assert recall_at_k(exact, approx, 30) >= 0.8

    def test_no_preprocessed_data(self, prepared):
        assert prepared.preprocessed_bytes() == 0

    def test_pair_validation(self, prepared, small_community):
        with pytest.raises(ParameterError):
            prepared.query_pair(-1, 0)
        with pytest.raises(ParameterError):
            prepared.query_pair(0, small_community.num_nodes)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": 0.0},
            {"walk_constant": 0.0},
            {"delta": 0.0},
            {"c": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            FastPPR(**kwargs)


class TestBidirectionalAgreement:
    def test_fastppr_and_bippr_agree(self, small_community):
        """Two independent bidirectional estimators must agree on
        significant pairs."""
        from repro.baselines.bippr import BiPPR

        fast = FastPPR(seed=0, max_walks=40_000)
        fast.preprocess(small_community)
        bi = BiPPR(seed=1, max_walks=40_000)
        bi.preprocess(small_community)

        exact = rwr_direct(small_community, 9)
        for target in np.argsort(-exact)[:3]:
            a = fast.query_pair(9, int(target))
            b = bi.query_pair(9, int(target))
            assert a == pytest.approx(b, abs=0.02)
