"""Tests for the observability layer (repro.obs) and its wiring.

Two load-bearing guarantees on top of the registry/trace unit behavior:

* **Zero distortion** — with metrics on and tracing active, every
  deployment still returns results bitwise identical to the serial
  engine, and the disabled-tracing fast path costs nanoseconds (held
  to a generous microsecond bound here so slow CI cannot flake).
* **Connected traces** — one traced request through the sharded Router
  yields a single connected span tree: root ``request`` →
  ``scheduler``/``dispatch`` → per-chunk ``sweep`` → per-shard
  ``sweep_shard`` shipped back over the pipe (surviving an injected
  worker kill with the retry visible as ``attempt=2``) → ``gather`` →
  ``select``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro import kernels
from repro.core.tpa import TPA
from repro.dynamic import DynamicGraph
from repro.engine import Engine, QueryRequest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.resilience import faults
from repro.serving import Server, bench_report, front_stats
from repro.serving.loadgen import run_closed_loop
from repro.sharding import Router


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test gets a fresh registry, empty span buffer, and the
    env-derived default enablement (tracing off, metrics on)."""
    obs_metrics.get_registry().reset()
    obs_metrics.set_metrics_enabled(None)
    obs_trace.clear_spans()
    obs_trace.set_tracing(None)
    obs_trace.set_trace_sample(None)
    yield
    obs_metrics.get_registry().reset()
    obs_metrics.set_metrics_enabled(None)
    obs_trace.clear_spans()
    obs_trace.set_tracing(None)
    obs_trace.set_trace_sample(None)


@pytest.fixture
def fork_numpy():
    """NumPy backend so shard workers fork (fast startup)."""
    previous = kernels.get_backend()
    kernels.set_backend("numpy")
    yield "numpy"
    kernels.set_backend(previous)


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    faults.reset_fault_plan()
    yield
    faults.reset_fault_plan()
    faults.set_scope("main", 0)


def tree_names(node: dict) -> dict:
    """``{name: [child names...]}`` flattening of one span-tree node."""
    return {
        node["span"]["name"]: [
            child["span"]["name"] for child in node["children"]
        ],
        **{
            key: value
            for child in node["children"]
            for key, value in tree_names(child).items()
        },
    }


# -- registry primitives -------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = obs_metrics.Registry()
        counter = registry.counter("repro_x_total", "x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = registry.gauge("repro_depth")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3.0
        hist = registry.histogram(
            "repro_t_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 100.0):
            hist.observe(value)
        child = hist.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(101.05)
        assert child.cumulative() == [1, 3, 3, 4]

    def test_get_or_create_and_kind_mismatch(self):
        registry = obs_metrics.Registry()
        first = registry.counter("repro_x_total")
        assert registry.counter("repro_x_total") is first
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labelnames=("shard",))
        with pytest.raises(ValueError):
            registry.counter("0bad name")

    def test_labels(self):
        registry = obs_metrics.Registry()
        family = registry.counter(
            "repro_sweeps_total", labelnames=("shard", "backend")
        )
        family.labels(shard=0, backend="numba").inc()
        family.labels(shard=0, backend="numba").inc()
        family.labels(shard=1, backend="numba").inc()
        assert family.labels(shard="0", backend="numba").value == 2
        with pytest.raises(ValueError):
            family.labels(shard=0)  # missing label
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no anonymous child

    def test_disabled_metrics_record_nothing(self):
        registry = obs_metrics.Registry()
        counter = registry.counter("repro_x_total")
        obs_metrics.set_metrics_enabled(False)
        counter.inc(5)
        obs_metrics.set_metrics_enabled(None)
        assert counter.value == 0

    def test_default_buckets_log_spaced(self):
        edges = obs_metrics.default_buckets()
        assert len(edges) == 20
        assert edges[0] == pytest.approx(1e-4)
        assert edges[-1] == pytest.approx(60.0)
        ratios = [b / a for a, b in zip(edges, edges[1:])]
        assert max(ratios) == pytest.approx(min(ratios))


class TestExposition:
    def fill(self, registry):
        registry.counter("repro_req_total", "Requests served.").inc(7)
        registry.gauge("repro_depth", "Queue depth.").set(3)
        sweeps = registry.histogram(
            "repro_sweep_seconds", "Sweep time.",
            labelnames=("shard", "backend"), buckets=(0.01, 0.1, 1.0),
        )
        sweeps.labels(shard="1", backend="numba").observe(0.05)
        sweeps.labels(shard="1", backend="numba").observe(5.0)
        registry.counter(
            "repro_odd_total", labelnames=("tag",)
        ).labels(tag='we"ird\nvalue').inc()

    def test_prometheus_round_trip(self):
        registry = obs_metrics.Registry()
        self.fill(registry)
        text = registry.expose()
        families = obs_metrics.parse_prometheus_text(text)
        assert families["repro_req_total"]["type"] == "counter"
        assert families["repro_req_total"]["help"] == "Requests served."
        assert families["repro_req_total"]["samples"] == [
            ("repro_req_total", {}, 7.0)
        ]
        assert families["repro_depth"]["samples"] == [
            ("repro_depth", {}, 3.0)
        ]
        sweep = families["repro_sweep_seconds"]
        assert sweep["type"] == "histogram"
        by_name = {}
        for name, labels, value in sweep["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        labels = {"shard": "1", "backend": "numba"}
        assert (labels, 2.0) in by_name["repro_sweep_seconds_count"]
        assert by_name["repro_sweep_seconds_sum"][0][1] == pytest.approx(5.05)
        buckets = {
            lbl["le"]: value
            for lbl, value in by_name["repro_sweep_seconds_bucket"]
        }
        assert buckets["+Inf"] == 2.0
        assert buckets["1"] == 1.0
        # Escaped label values survive the round trip.
        (sample,) = families["repro_odd_total"]["samples"]
        assert sample[1] == {"tag": 'we"ird\nvalue'}

    def test_parser_rejects_malformed(self):
        for bad in (
            "repro_x_total",  # no value
            "repro_x_total{le=0.1} 1",  # unquoted label value
            "repro_x_total notanumber",
            "# TYPE repro_x_total weird",
        ):
            with pytest.raises(ValueError):
                obs_metrics.parse_prometheus_text(bad)

    def test_json_snapshot(self):
        registry = obs_metrics.Registry()
        self.fill(registry)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == obs_metrics.METRICS_SCHEMA
        assert snapshot["families"]["repro_req_total"]["samples"][0][
            "value"
        ] == 7.0
        hist = snapshot["families"]["repro_sweep_seconds"]["samples"][0]
        assert hist["count"] == 2
        assert hist["counts"][-1] == 2
        json.dumps(snapshot)  # JSON-clean


# -- trace primitives ----------------------------------------------------------


class TestTrace:
    def test_disabled_by_default(self):
        assert obs_trace.new_trace_id() is None
        with obs_trace.span("anything") as opened:
            assert opened is None
        assert obs_trace.spans() == []

    def test_span_tree_and_format(self):
        obs_trace.set_tracing(True)
        trace_id = obs_trace.new_trace_id()
        with obs_trace.span("request", trace_id=trace_id, seed=7):
            with obs_trace.span("dispatch"):
                with obs_trace.span("sweep"):
                    pass
                with obs_trace.span("gather"):
                    pass
        retained = obs_trace.spans(trace_id)
        assert len(retained) == 4
        (root,) = obs_trace.span_tree(trace_id)
        shape = tree_names(root)
        assert shape["request"] == ["dispatch"]
        assert shape["dispatch"] == ["sweep", "gather"]
        rendered = obs_trace.format_trace(trace_id)
        assert "request" in rendered and "seed=7" in rendered

    def test_sampling_is_deterministic(self):
        obs_trace.set_tracing(True)
        obs_trace.set_trace_sample(0.5)
        minted = [obs_trace.new_trace_id() for _ in range(200)]
        kept = sum(1 for t in minted if t is not None)
        assert 50 < kept < 150
        obs_trace.set_trace_sample(0.0)
        assert obs_trace.new_trace_id() is None

    def test_ring_buffer_bounded(self):
        obs_trace.set_tracing(True)
        obs_trace.set_buffer_size(16)
        try:
            trace_id = obs_trace.new_trace_id()
            for index in range(100):
                obs_trace.start_span(
                    "s", trace_id, begin=float(index)
                ).finish(end=float(index))
            assert len(obs_trace.spans()) == 16
        finally:
            obs_trace.set_buffer_size(8192)

    def test_ingest_rebases_foreign_clock(self):
        obs_trace.set_tracing(True)
        arrival = time.perf_counter()
        obs_trace.ingest_spans(
            [{
                "trace_id": "t-x", "span_id": "s-x", "parent_id": None,
                "name": "sweep_shard", "begin": 1000.0, "end": 1000.25,
                "duration_ms": 250.0, "tags": {"pid": 1},
            }],
            rebase_end=arrival,
        )
        (adopted,) = obs_trace.spans("t-x")
        assert adopted["end"] == arrival
        assert adopted["begin"] == pytest.approx(arrival - 0.25)
        assert adopted["tags"]["clock"] == "rebased"

    def test_dump_traces(self, tmp_path):
        obs_trace.set_tracing(True)
        trace_id = obs_trace.new_trace_id()
        with obs_trace.span("request", trace_id=trace_id):
            pass
        path = tmp_path / "trace.json"
        document = obs_trace.dump_traces(str(path))
        assert document["schema"] == obs_trace.TRACE_SCHEMA
        loaded = json.loads(path.read_text())
        assert loaded["spans"][0]["name"] == "request"

    def test_phase_accounting(self):
        accumulator: dict = {}
        with obs_trace.collect_phases(accumulator):
            with obs_trace.phase("sweep"):
                pass
            obs_trace.add_phase("sweep", 1.0)
            obs_trace.add_phase("gather", 2.0)
        assert accumulator["sweep"] >= 1.0
        assert accumulator["gather"] == 2.0
        obs_trace.add_phase("late", 9.0)  # no accumulator installed: no-op
        assert "late" not in accumulator


class TestOverhead:
    """The disabled path must stay provably negligible.

    Bounds are *very* generous (microseconds per call against a real
    cost of nanoseconds) so a loaded CI host cannot flake this; what
    the test actually guards is someone accidentally making the
    disabled path allocate, lock, or read the environment per call.
    """

    def best_of(self, fn, loops=20_000, repeats=5):
        samples = []
        for _ in range(repeats):
            begin = time.perf_counter()
            for _ in range(loops):
                fn()
            samples.append((time.perf_counter() - begin) / loops)
        return min(samples)

    def test_disabled_trace_id_is_cheap(self):
        assert not obs_trace.tracing_enabled()
        per_call = self.best_of(obs_trace.new_trace_id)
        assert per_call < 5e-6

    def test_disabled_metrics_are_cheap(self):
        counter = obs_metrics.get_registry().counter("repro_x_total")
        obs_metrics.set_metrics_enabled(False)
        try:
            per_call = self.best_of(counter.inc)
        finally:
            obs_metrics.set_metrics_enabled(None)
        assert per_call < 5e-6

    def test_untraced_span_context_is_cheap(self):
        def once():
            with obs_trace.span("request"):
                pass

        assert self.best_of(once, loops=5_000) < 2e-5


# -- serving integration -------------------------------------------------------


def small_server(graph, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait_ms", 1.0)
    return Server(TPA(s_iteration=4, t_iteration=8), graph, **kwargs)


class TestServingIntegration:
    def test_registry_families_populated_by_serving(self, small_community):
        with small_server(small_community, cache_size=32) as server:
            server.batch([QueryRequest(seed=s, k=5) for s in range(12)])
            server.query(0, k=5)
            server.query(0, k=5)  # cache hit
        families = obs_metrics.get_registry().families()
        assert families["repro_requests_total"].value >= 12
        assert families["repro_request_seconds"].labels().count >= 12
        assert families["repro_cache_hits_total"].value >= 1
        phase = families["repro_phase_seconds"]
        phase_labels = {key[0] for key in phase.children()}
        assert {"queue", "dispatch", "select"} <= phase_labels
        assert families["repro_queries_served_total"].value >= 12
        # The whole registry round-trips the strict parser.
        parsed = obs_metrics.parse_prometheus_text(
            obs_metrics.get_registry().expose()
        )
        assert set(parsed) == set(families)

    def test_latency_stats_phase_breakdown(self, small_community):
        with small_server(small_community) as server:
            server.batch([QueryRequest(seed=s, k=5) for s in range(8)])
            snapshot = server.stats()
        phases = snapshot["phases"]
        assert phases["queue"]["count"] == 8
        assert phases["dispatch"]["count"] >= 1
        assert phases["select"]["total_ms"] > 0
        assert phases["dispatch"]["mean_ms"] >= phases["select"]["mean_ms"]

    def test_server_and_router_stats_same_shape(
        self, small_community, fork_numpy
    ):
        with small_server(small_community, cache_size=16) as server:
            server.query(0, k=5)
            server_stats = server.stats()
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, cache_size=16,
        ) as router:
            router.query(0, k=5)
            router_stats = router.stats()
        assert set(server_stats) == set(router_stats)
        assert server_stats["shards"] is None
        assert router_stats["shards"]["num_shards"] == 2
        assert server_stats["cache"] is not None

    def test_front_stats_shape(self):
        merged = front_stats(
            {"completed": 1},
            workers=2, pending=0, max_batch=8, max_wait_ms=1.0,
            overloads=0, pinning=None, queries_served=1,
            online_seconds=0.5, cache_stats=None,
        )
        for key in ("workers", "pending", "max_batch", "max_wait_ms",
                    "overloads", "pinning", "queries_served",
                    "online_seconds", "cache", "shards", "completed"):
            assert key in merged
        assert merged["cache"] is None and merged["shards"] is None

    def test_bench_report_carries_metrics_and_shard_counters(
        self, small_community, fork_numpy
    ):
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2,
        ) as router:
            report = run_closed_loop(
                router, np.arange(16), k=5, clients=2,
                requests_per_client=5,
            )
        document = bench_report(report, kind="shard-bench", config={})
        assert document["shard_respawns_total"] == 0
        assert document["shard_sweep_retries_total"] == 0
        assert document["shard_generations"] == [0, 0]
        snapshot = document["metrics"]
        assert snapshot["schema"] == obs_metrics.METRICS_SCHEMA
        assert "repro_sweep_seconds" in snapshot["families"]
        json.dumps(document)

    def test_loadgen_splits_queue_vs_compute(self, small_community):
        with small_server(small_community) as server:
            report = run_closed_loop(
                server, np.arange(32), k=5, clients=4,
                requests_per_client=10, keep_samples=True,
            )
        assert report.requests == 40
        assert not np.isnan(report.queue_ms).any()
        # Per request the client-side total is queue + compute + only
        # future-wakeup overhead: the split never exceeds the total and
        # accounts for nearly all of it.
        totals = report.latencies_ms
        split = report.queue_ms + report.compute_ms
        assert np.all(split <= totals + 0.5)
        gap = totals - split
        assert float(np.median(gap)) < 50.0
        assert report.queue_mean_ms > 0
        assert report.compute_mean_ms > 0
        assert (
            report.queue_mean_ms + report.compute_mean_ms
            <= report.latency_mean_ms + 0.5
        )

    def test_results_bitwise_with_instrumentation_active(
        self, small_community, fork_numpy
    ):
        requests = [
            QueryRequest(seed=s % 40, k=8) if s % 3 else QueryRequest(seed=s)
            for s in range(30)
        ]
        serial = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        reference = serial.batch(requests)
        obs_trace.set_tracing(True)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, max_batch=8, max_wait_ms=0.5,
        ) as router:
            results = router.batch(requests)
        for expected, actual in zip(reference, results):
            if expected.scores is not None:
                np.testing.assert_array_equal(expected.scores, actual.scores)
            else:
                np.testing.assert_array_equal(
                    expected.top_nodes, actual.top_nodes
                )
                np.testing.assert_array_equal(
                    expected.top_scores, actual.top_scores
                )


# -- cross-process tracing -----------------------------------------------------


class TestCrossProcessTracing:
    def test_connected_span_tree_over_four_shards(
        self, small_community, fork_numpy
    ):
        obs_trace.set_tracing(True)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=4,
        ) as router:
            result = router.query(3, k=5)
        assert result.top_nodes.size == 5
        trace_ids = obs_trace.trace_ids()
        assert len(trace_ids) == 1
        (trace_id,) = trace_ids
        roots = obs_trace.span_tree(trace_id)
        assert len(roots) == 1, [
            s["name"] for s in obs_trace.spans(trace_id)
        ]
        shape = tree_names(roots[0])
        assert set(shape["request"]) == {"scheduler", "dispatch"}
        assert "sweep" in shape["dispatch"]
        assert "gather" in shape["dispatch"]
        assert "select" in shape["dispatch"]
        retained = obs_trace.spans(trace_id)
        worker_spans = [
            s for s in retained if s["name"] == "sweep_shard"
        ]
        assert {s["tags"]["shard"] for s in worker_spans} == {0, 1, 2, 3}
        assert all(
            s["tags"]["clock"] == "rebased" for s in worker_spans
        )
        # Every sweep_shard hangs under a sweep of the same trace.
        sweep_ids = {
            s["span_id"] for s in retained if s["name"] == "sweep"
        }
        assert all(s["parent_id"] in sweep_ids for s in worker_spans)
        # Worker pids differ from ours: genuinely cross-process.
        import os

        assert any(s["tags"]["pid"] != os.getpid() for s in worker_spans)

    def test_trace_survives_injected_respawn(
        self, small_community, fork_numpy, monkeypatch
    ):
        # Visit 1 is the construction-time warm probe; the kill lands on
        # the first traced sweep, whose bounded retry must show up as an
        # attempt=2 sweep under the *same* trace id.
        monkeypatch.setenv(
            faults.FAULTS_ENV_VAR, "kill_mid_sweep@2:scope=shard1,gen=0"
        )
        faults.reset_fault_plan()
        obs_trace.set_tracing(True)
        serial = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        reference = serial.query(5, k=8)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2,
        ) as router:
            result = router.query(5, k=8)
            shard_stats = router.stats()["shards"]
        np.testing.assert_array_equal(reference.top_nodes, result.top_nodes)
        assert shard_stats["respawns"] == 1
        (trace_id,) = obs_trace.trace_ids()
        attempts = {
            s["tags"]["attempt"]
            for s in obs_trace.spans(trace_id)
            if s["name"] == "sweep"
        }
        assert attempts == {1, 2}
        retried = [
            s for s in obs_trace.spans(trace_id)
            if s["name"] == "sweep" and s["tags"].get("outcome") == "retried"
        ]
        assert len(retried) >= 1
        # The respawn is visible in the registry too.
        families = obs_metrics.get_registry().families()
        assert families["repro_shard_respawns_total"].labels(
            shard="1"
        ).value == 1
        assert families["repro_sweep_retries_total"].value >= 1

    def test_trace_consistent_across_republish(
        self, small_community, fork_numpy
    ):
        obs_trace.set_tracing(True)
        dynamic = DynamicGraph(small_community)
        with Router(
            TPA(s_iteration=4, t_iteration=8), dynamic, num_shards=2,
        ) as router:
            router.query(1, k=5)
            before = set(obs_trace.trace_ids())
            dynamic.add_edges([(0, 399), (399, 0)])
            dynamic.compact()
            # The first sweep after the compaction republishes the store
            # to the new epoch; the traced request riding it must still
            # produce one connected tree.
            router.query(1, k=5)
            shard_stats = router.stats()["shards"]
        after = [t for t in obs_trace.trace_ids() if t not in before]
        assert shard_stats["republishes"] >= 1
        assert len(after) == 1
        roots = obs_trace.span_tree(after[0])
        assert len(roots) == 1
        shape = tree_names(roots[0])
        assert "sweep" in shape["dispatch"]
        # The registry saw the republish too.
        families = obs_metrics.get_registry().families()
        assert families["repro_republishes_total"].value >= 1

    def test_concurrent_submissions_no_span_bleed(
        self, small_community, fork_numpy
    ):
        obs_trace.set_tracing(True)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, max_batch=4, max_wait_ms=0.5,
        ) as router:
            seeds = list(range(8))
            futures: dict[int, object] = {}
            barrier = threading.Barrier(8)

            def submit(seed):
                barrier.wait()
                futures[seed] = router.submit(QueryRequest(seed=seed, k=5))

            threads = [
                threading.Thread(target=submit, args=(seed,))
                for seed in seeds
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wait(list(futures.values()), timeout=120)
            for future in futures.values():
                future.result(1)
        trace_ids = obs_trace.trace_ids()
        assert len(trace_ids) == 8
        seen_seeds = []
        for trace_id in trace_ids:
            retained = obs_trace.spans(trace_id)
            roots = [
                s for s in retained
                if s["name"] == "request" and s["parent_id"] is None
            ]
            assert len(roots) == 1  # exactly one root per trace
            seen_seeds.append(roots[0]["tags"]["seed"])
            # No span of another trace is parented under this trace.
            ids = {s["span_id"] for s in retained}
            for span_dict in retained:
                parent = span_dict["parent_id"]
                assert parent is None or parent in ids or span_dict[
                    "name"
                ] in ("scheduler", "dispatch")
        assert sorted(seen_seeds) == seeds


# -- sampling / env knobs ------------------------------------------------------


class TestEnvKnobs:
    def test_trace_env(self, monkeypatch):
        monkeypatch.setenv(obs_trace.TRACE_ENV_VAR, "1")
        obs_trace.set_tracing(None)
        assert obs_trace.tracing_enabled()
        monkeypatch.setenv(obs_trace.TRACE_ENV_VAR, "off")
        obs_trace.set_tracing(None)
        assert not obs_trace.tracing_enabled()

    def test_sample_env(self, monkeypatch):
        monkeypatch.setenv(obs_trace.TRACE_SAMPLE_ENV_VAR, "0.0")
        obs_trace.set_trace_sample(None)
        obs_trace.set_tracing(True)
        assert obs_trace.new_trace_id() is None

    def test_metrics_env(self, monkeypatch):
        monkeypatch.setenv(obs_metrics.METRICS_ENV_VAR, "0")
        obs_metrics.set_metrics_enabled(None)
        assert not obs_metrics.metrics_enabled()
        counter = obs_metrics.get_registry().counter("repro_x_total")
        counter.inc()
        assert counter.value == 0
        monkeypatch.delenv(obs_metrics.METRICS_ENV_VAR)
        obs_metrics.set_metrics_enabled(None)
        assert obs_metrics.metrics_enabled()
