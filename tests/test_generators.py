"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph.generators import (
    community_graph,
    complete_graph,
    gnm_random_graph,
    rewire_random,
    ring_graph,
    rmat_graph,
    star_graph,
)


class TestCommunityGraph:
    def test_node_count(self):
        graph = community_graph(300, avg_degree=6, seed=1)
        assert graph.num_nodes == 300

    def test_no_dangling_nodes(self):
        graph = community_graph(300, avg_degree=6, seed=2)
        assert graph.dangling_nodes.size == 0
        assert (graph.out_degree >= 1).all()

    def test_edge_count_near_target(self):
        graph = community_graph(1000, avg_degree=10, seed=3)
        # Dedup and degree rounding allow slack, but the mean degree
        # should land in the right ballpark.
        assert 6 <= graph.num_edges / graph.num_nodes <= 14

    def test_deterministic_given_seed(self):
        a = community_graph(200, avg_degree=5, seed=7)
        b = community_graph(200, avg_degree=5, seed=7)
        np.testing.assert_array_equal(
            a.adjacency.toarray(), b.adjacency.toarray()
        )

    def test_different_seeds_differ(self):
        a = community_graph(200, avg_degree=5, seed=7)
        b = community_graph(200, avg_degree=5, seed=8)
        assert (a.adjacency != b.adjacency).nnz > 0

    def test_no_self_loops(self):
        graph = community_graph(200, avg_degree=5, seed=9)
        assert graph.adjacency.diagonal().sum() == 0

    def test_community_structure_present(self):
        """Most edges should stay within partitions at high p_in."""
        from repro.graph.partition import partition_graph

        graph = community_graph(
            400, avg_degree=8, num_communities=8, p_in=0.9, seed=10
        )
        labels = partition_graph(graph, 8, seed=0)
        src, dst = graph.edges()
        same = (labels[src] == labels[dst]).mean()
        # Recovered partitions won't be perfect, but structure must show.
        assert same > 0.5

    def test_reciprocity_increases_mutual_edges(self):
        low = community_graph(400, avg_degree=8, reciprocity=0.0, seed=11)
        high = community_graph(400, avg_degree=8, reciprocity=0.8, seed=11)

        def mutual_fraction(graph):
            adj = graph.adjacency
            mutual = adj.multiply(adj.T).sum()
            return mutual / graph.num_edges

        assert mutual_fraction(high) > mutual_fraction(low)

    def test_skewed_in_degree(self):
        graph = community_graph(1000, avg_degree=8, seed=12)
        in_degree = graph.in_degree
        # Power-law-ish: max in-degree far exceeds the mean.
        assert in_degree.max() > 5 * in_degree.mean()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1, "avg_degree": 2},
            {"n": 100, "avg_degree": 2, "p_in": 1.5},
            {"n": 100, "avg_degree": 2, "num_communities": 0},
            {"n": 100, "avg_degree": 2, "num_communities": 101},
            {"n": 100, "avg_degree": 2, "reciprocity": -0.1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            community_graph(seed=0, **kwargs)


class TestRmatGraph:
    def test_counts(self):
        graph = rmat_graph(256, 2000, seed=1)
        assert graph.num_nodes == 256
        assert graph.num_edges <= 2000 + 256  # dangling fixes may add a few
        assert graph.dangling_nodes.size == 0

    def test_deterministic(self):
        a = rmat_graph(128, 500, seed=5)
        b = rmat_graph(128, 500, seed=5)
        np.testing.assert_array_equal(a.adjacency.toarray(), b.adjacency.toarray())

    def test_skewed_degrees(self):
        graph = rmat_graph(1024, 10_000, seed=2)
        assert graph.in_degree.max() > 4 * graph.in_degree.mean()

    def test_invalid_probabilities(self):
        with pytest.raises(ParameterError):
            rmat_graph(64, 100, a=0.9, b=0.9, c=0.9)

    def test_too_small(self):
        with pytest.raises(ParameterError):
            rmat_graph(1, 10)


class TestGnmRandomGraph:
    def test_exact_edge_count_before_dangling_fix(self):
        graph = gnm_random_graph(200, 1500, seed=1)
        assert graph.num_nodes == 200
        # Dangling fix can only add edges.
        assert 1500 <= graph.num_edges <= 1500 + 200

    def test_no_dangling(self):
        graph = gnm_random_graph(100, 300, seed=2)
        assert graph.dangling_nodes.size == 0

    def test_no_self_loops(self):
        graph = gnm_random_graph(100, 300, seed=3)
        assert graph.adjacency.diagonal().sum() == 0

    def test_deterministic(self):
        a = gnm_random_graph(100, 400, seed=4)
        b = gnm_random_graph(100, 400, seed=4)
        np.testing.assert_array_equal(a.adjacency.toarray(), b.adjacency.toarray())

    def test_m_bounds(self):
        with pytest.raises(ParameterError):
            gnm_random_graph(10, 5)  # m < n
        with pytest.raises(ParameterError):
            gnm_random_graph(10, 1000)  # m > n(n-1)

    def test_flat_degree_distribution(self):
        graph = gnm_random_graph(500, 5000, seed=5)
        # ER in-degrees concentrate near the mean (no heavy tail).
        assert graph.in_degree.max() < 4 * graph.in_degree.mean()


class TestRewireRandom:
    def test_preserves_counts(self, small_community):
        rewired = rewire_random(small_community, seed=1)
        assert rewired.num_nodes == small_community.num_nodes
        # The GNM target is the original edge count; dangling repair may
        # add at most one edge per node.
        assert abs(rewired.num_edges - small_community.num_edges) <= small_community.num_nodes

    def test_destroys_structure(self, small_community):
        rewired = rewire_random(small_community, seed=2)
        overlap = small_community.adjacency.multiply(rewired.adjacency).sum()
        assert overlap < 0.1 * small_community.num_edges


class TestDeterministicTopologies:
    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert graph.out_neighbors(4).tolist() == [0]

    def test_star(self):
        graph = star_graph(5)
        assert graph.num_edges == 8  # 4 out + 4 in
        assert graph.out_degree[0] == 4

    def test_complete(self):
        graph = complete_graph(4)
        assert graph.num_edges == 12

    @pytest.mark.parametrize("factory", [ring_graph, star_graph, complete_graph])
    def test_minimum_size(self, factory):
        with pytest.raises(ParameterError):
            factory(1)
