"""Tests for the scalability experiment (Theorems 3-4 growth rates)."""

import pytest

from repro.experiments.scaling import growth_exponent, measure_scaling


@pytest.fixture(scope="module")
def records():
    return measure_scaling(sizes=(500, 1_000, 2_000, 4_000), num_seeds=3)


class TestScaling:
    def test_one_record_per_size(self, records):
        assert len(records) == 4
        assert [r["nodes"] for r in records] == [500, 1000, 2000, 4000]

    def test_index_bytes_exactly_linear_in_n(self, records):
        """TPA's index is one float per node: 8n bytes (Theorem 4)."""
        for record in records:
            assert record["index_bytes"] == 8 * record["nodes"]

    def test_index_growth_exponent(self, records):
        # bytes ∝ n and m ∝ n here, so the log-log slope vs edges ≈ 1.
        assert 0.7 < growth_exponent(records, "index_bytes") < 1.3

    def test_online_time_subquadratic(self, records):
        """Theorem 3: online is O(mS); allow generous noise but rule out
        quadratic blowup."""
        assert growth_exponent(records, "online_seconds") < 1.8

    def test_times_increase_overall(self, records):
        assert records[-1]["preprocess_seconds"] > records[0]["preprocess_seconds"]
