"""Unit tests for conductance sweep cuts (local community detection)."""

import numpy as np
import pytest

from repro.analysis.sweep import conductance, sweep_cut
from repro.core.tpa import TPA
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.ranking.rwr import rwr_direct


def _two_cliques(size=10, bridges=1):
    """Two directed cliques joined by `bridges` edge pairs."""
    edges = []
    for block, offset in ((0, 0), (1, size)):
        for u in range(size):
            for v in range(size):
                if u != v:
                    edges.append((offset + u, offset + v))
    for b in range(bridges):
        edges.append((b, size + b))
        edges.append((size + b, b))
    src, dst = zip(*edges)
    return Graph(2 * size, src, dst)


class TestConductance:
    def test_planted_clique_is_low(self):
        graph = _two_cliques()
        phi = conductance(graph, np.arange(10))
        # 2 cross edges vs volume ~ 92.
        assert phi < 0.05

    def test_random_half_is_high(self):
        graph = _two_cliques()
        mixed = np.array([0, 1, 2, 3, 4, 10, 11, 12, 13, 14])
        assert conductance(graph, mixed) > conductance(graph, np.arange(10))

    def test_symmetric_in_complement(self):
        graph = _two_cliques()
        left = conductance(graph, np.arange(10))
        right = conductance(graph, np.arange(10, 20))
        assert left == pytest.approx(right)

    def test_validation(self):
        graph = _two_cliques()
        with pytest.raises(ParameterError):
            conductance(graph, np.array([], dtype=np.int64))
        with pytest.raises(ParameterError):
            conductance(graph, np.arange(20))


class TestSweepCut:
    def test_recovers_planted_clique(self):
        graph = _two_cliques()
        scores = rwr_direct(graph, 3)
        result = sweep_cut(graph, scores)
        assert set(result.nodes.tolist()) == set(range(10))
        assert result.conductance < 0.05

    def test_incremental_matches_direct(self):
        """The incremental sweep conductances must equal direct
        recomputation for every prefix."""
        graph = _two_cliques(size=6)
        scores = rwr_direct(graph, 0)
        result = sweep_cut(graph, scores, max_size=8)
        # Rebuild the examined ranking order the same way.
        degree = np.asarray(graph.undirected_view().sum(axis=1)).ravel()
        candidates = np.flatnonzero(scores > 0)
        norm = scores / np.maximum(degree, 1.0)
        order = candidates[np.argsort(-norm[candidates], kind="stable")][:8]
        for prefix_len in range(1, len(order) + 1):
            direct = conductance(graph, order[:prefix_len])
            assert result.sweep_conductances[prefix_len - 1] == pytest.approx(direct)

    def test_tpa_scores_find_community(self):
        """End-to-end: approximate TPA scores are good enough for the
        community detection application the paper motivates."""
        from repro.graph.generators import community_graph
        from repro.graph.partition import partition_graph

        graph = community_graph(
            600, avg_degree=10, num_communities=6, p_in=0.95, seed=13
        )
        method = TPA(s_iteration=5, t_iteration=10)
        method.preprocess(graph)
        labels = partition_graph(graph, 6, seed=0)

        seed_node = 17
        result = sweep_cut(graph, method.query(seed_node), max_size=250)
        members = result.nodes
        # The recovered set is strongly enriched for the seed's partition
        # relative to its base rate in the graph.
        purity = (labels[members] == labels[seed_node]).mean()
        base_rate = (labels == labels[seed_node]).mean()
        assert purity > 2 * base_rate

    def test_raw_score_ranking_option(self):
        graph = _two_cliques()
        scores = rwr_direct(graph, 0)
        result = sweep_cut(graph, scores, degree_normalize=False)
        assert result.conductance <= 1.0

    def test_max_size_respected(self):
        graph = _two_cliques()
        scores = rwr_direct(graph, 0)
        result = sweep_cut(graph, scores, max_size=4)
        assert result.sweep_conductances.size <= 4

    def test_validation(self):
        graph = _two_cliques()
        with pytest.raises(ParameterError):
            sweep_cut(graph, np.zeros(3))
        with pytest.raises(ParameterError):
            sweep_cut(graph, np.zeros(graph.num_nodes))
        with pytest.raises(ParameterError):
            sweep_cut(graph, rwr_direct(graph, 0), max_size=0)
