"""Unit tests for forward and backward push."""

import numpy as np
import pytest

from repro.baselines.backward_push import backward_push
from repro.baselines.forward_push import forward_push
from repro.exceptions import ParameterError
from repro.ranking.rwr import rwr_direct


class TestForwardPush:
    def test_mass_conservation(self, small_community):
        """Every push moves c·r(v) to the estimate and keeps (1-c)·r(v) as
        residual, so estimate + residual always totals exactly 1."""
        result = forward_push(small_community, 0, rmax=1e-4)
        total = result.estimate.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_invariant_recovers_exact(self, small_community):
        """π_s = p + Σ_v r(v) π_v — checked against direct solves."""
        seed = 3
        result = forward_push(small_community, seed, rmax=1e-3, c=0.15)
        reconstruction = result.estimate.copy()
        for node in np.flatnonzero(result.residual):
            reconstruction += result.residual[node] * rwr_direct(
                small_community, int(node)
            )
        exact = rwr_direct(small_community, seed)
        np.testing.assert_allclose(reconstruction, exact, atol=1e-8)

    def test_residual_below_threshold(self, small_community):
        rmax = 1e-4
        result = forward_push(small_community, 0, rmax=rmax, degree_scaled=True)
        thresholds = rmax * np.maximum(small_community.out_degree, 1)
        assert (result.residual <= thresholds + 1e-12).all()

    def test_unscaled_threshold(self, small_community):
        rmax = 1e-4
        result = forward_push(small_community, 0, rmax=rmax, degree_scaled=False)
        assert (result.residual <= rmax + 1e-12).all()

    def test_smaller_rmax_more_accurate(self, small_community):
        exact = rwr_direct(small_community, 5)
        coarse = forward_push(small_community, 5, rmax=1e-2).estimate
        fine = forward_push(small_community, 5, rmax=1e-5).estimate
        assert np.abs(fine - exact).sum() < np.abs(coarse - exact).sum()

    def test_estimate_is_lower_bound(self, small_community):
        exact = rwr_direct(small_community, 5)
        result = forward_push(small_community, 5, rmax=1e-3)
        assert (result.estimate <= exact + 1e-9).all()

    def test_push_count_positive(self, small_community):
        result = forward_push(small_community, 0, rmax=1e-3)
        assert result.pushes > 0

    def test_invalid_parameters(self, small_community):
        with pytest.raises(ParameterError):
            forward_push(small_community, 0, rmax=0.0)
        with pytest.raises(ParameterError):
            forward_push(small_community, 0, rmax=1e-3, c=0.0)
        with pytest.raises(ParameterError):
            forward_push(small_community, -1, rmax=1e-3)

    def test_max_pushes_enforced(self, small_community):
        with pytest.raises(ParameterError, match="exceeded"):
            forward_push(small_community, 0, rmax=1e-9, max_pushes=10)


class TestBackwardPush:
    def test_residual_below_rmax(self, small_community):
        result = backward_push(small_community, 0, rmax=1e-3)
        assert (result.residual <= 1e-3 + 1e-12).all()

    def test_invariant_for_pairs(self, small_community):
        """π_s(t) = p(s) + Σ_v r(v) π_s(v) for several sources s."""
        target = 7
        result = backward_push(small_community, target, rmax=1e-4, c=0.15)
        residual_nodes = np.flatnonzero(result.residual)
        for source in (0, 11, 99):
            exact_vector = rwr_direct(small_community, source)
            reconstructed = result.estimate[source] + float(
                result.residual[residual_nodes] @ exact_vector[residual_nodes]
            )
            assert reconstructed == pytest.approx(exact_vector[target], abs=1e-8)

    def test_tight_rmax_recovers_column(self, small_community):
        """With tiny rmax, the estimate approximates the target column of
        the RWR matrix: p(s) ≈ π_s(t)."""
        target = 3
        result = backward_push(small_community, target, rmax=1e-7)
        for source in (0, 5):
            exact = rwr_direct(small_community, source)[target]
            assert result.estimate[source] == pytest.approx(exact, abs=1e-4)

    def test_invalid_parameters(self, small_community):
        with pytest.raises(ParameterError):
            backward_push(small_community, 0, rmax=0.0)
        with pytest.raises(ParameterError):
            backward_push(small_community, small_community.num_nodes, rmax=1e-3)

    def test_max_pushes_enforced(self, medium_community):
        with pytest.raises(ParameterError, match="exceeded"):
            backward_push(medium_community, 0, rmax=1e-10, max_pushes=10)
