"""Tests for the library CLI (python -m repro)."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import community_graph
from repro.graph.io import write_edge_list


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    graph = community_graph(300, avg_degree=6, seed=8)
    path = tmp_path_factory.mktemp("cli") / "graph.tsv"
    write_edge_list(graph, path)
    return path


class TestQueryCommand:
    def test_tpa_query(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "5",
            "--method", "tpa", "--top", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert lines[0] == "rank\tnode\tscore"
        assert len(lines) == 8  # header + 7 rows
        # Seed ranks first in its own RWR vector.
        assert lines[1].split("\t")[1] == "5"

    def test_exact_method(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "0",
            "--method", "bepi", "--top", "3",
        ])
        assert code == 0
        assert "method=BePI" in capsys.readouterr().out

    def test_missing_seed_id(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "999999",
        ])
        assert code == 2
        assert "not present" in capsys.readouterr().err

    def test_scores_descending(self, edge_file, capsys):
        main(["query", "--graph", str(edge_file), "--seed", "1", "--top", "20"])
        out = capsys.readouterr().out
        scores = [
            float(line.split("\t")[2])
            for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert scores == sorted(scores, reverse=True)


class TestStatsCommand:
    def test_stats_output(self, edge_file, capsys):
        assert main(["stats", "--graph", str(edge_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes            300" in out
        assert "reciprocity" in out


class TestGenerateCommand:
    def test_generate_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "slashdot.tsv"
        code = main([
            "generate", "--dataset", "slashdot", "--scale", "0.05",
            "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        # Generated file is queryable.
        capsys.readouterr()
        assert main([
            "query", "--graph", str(out_path), "--seed", "0", "--top", "3",
        ]) == 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "orkut", "--out", "x.tsv"])
