"""Tests for the library CLI (python -m repro)."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import community_graph
from repro.graph.io import write_edge_list


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    graph = community_graph(300, avg_degree=6, seed=8)
    path = tmp_path_factory.mktemp("cli") / "graph.tsv"
    write_edge_list(graph, path)
    return path


class TestQueryCommand:
    def test_tpa_query(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "5",
            "--method", "tpa", "--top", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert lines[0] == "rank\tnode\tscore"
        assert len(lines) == 8  # header + 7 rows
        # Seed ranks first in its own RWR vector.
        assert lines[1].split("\t")[1] == "5"

    def test_exact_method(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "0",
            "--method", "bepi", "--top", "3",
        ])
        assert code == 0
        assert "method=BePI" in capsys.readouterr().out

    def test_missing_seed_id(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "999999",
        ])
        assert code == 2
        assert "not present" in capsys.readouterr().err

    def test_scores_descending(self, edge_file, capsys):
        main(["query", "--graph", str(edge_file), "--seed", "1", "--top", "20"])
        out = capsys.readouterr().out
        scores = [
            float(line.split("\t")[2])
            for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert scores == sorted(scores, reverse=True)


class TestBatchQuery:
    def test_seeds_comma_list(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seeds", "5,9,12",
            "--top", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert lines[0] == "seed\trank\tnode\tscore"
        assert len(lines) == 1 + 3 * 4  # header + 3 seeds x 4 rows
        # Each seed ranks itself first (exclude_seed is off in the CLI).
        first_rows = [l for l in lines[1:] if l.split("\t")[1] == "1"]
        assert [row.split("\t")[0] for row in first_rows] == ["5", "9", "12"]
        assert [row.split("\t")[2] for row in first_rows] == ["5", "9", "12"]

    def test_seeds_file(self, edge_file, tmp_path, capsys):
        seed_file = tmp_path / "seeds.txt"
        seed_file.write_text("5\n9\n")
        code = main([
            "query", "--graph", str(edge_file),
            "--seeds", f"@{seed_file}", "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# queries=2" in out

    def test_batch_flag_forces_batch_format(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "5", "--batch",
            "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed\trank\tnode\tscore" in out

    def test_seed_and_seeds_combine(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "5",
            "--seeds", "9", "--top", "2",
        ])
        assert code == 0
        assert "# queries=2" in capsys.readouterr().out

    def test_missing_seed_in_batch(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seeds", "5,999999",
        ])
        assert code == 2
        assert "not present" in capsys.readouterr().err

    def test_no_seed_arguments(self, edge_file, capsys):
        code = main(["query", "--graph", str(edge_file)])
        assert code == 2
        assert "required" in capsys.readouterr().err

    def test_batch_matches_single_runs(self, edge_file, capsys):
        main(["query", "--graph", str(edge_file), "--seeds", "7,11",
              "--top", "5"])
        batch_out = capsys.readouterr().out
        main(["query", "--graph", str(edge_file), "--seed", "7",
              "--top", "5"])
        single_out = capsys.readouterr().out
        single_rows = [
            l.split("\t") for l in single_out.splitlines()
            if l and l[0].isdigit()
        ]
        batch_rows = [
            l.split("\t")[1:] for l in batch_out.splitlines()
            if l.startswith("7\t")
        ]
        assert batch_rows == single_rows

    def test_cpi_method_available(self, edge_file, capsys):
        code = main([
            "query", "--graph", str(edge_file), "--seed", "0",
            "--method", "cpi", "--top", "3",
        ])
        assert code == 0
        assert "method=CPI" in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_output(self, edge_file, capsys):
        assert main(["stats", "--graph", str(edge_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes            300" in out
        assert "reciprocity" in out


class TestGenerateCommand:
    def test_generate_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "slashdot.tsv"
        code = main([
            "generate", "--dataset", "slashdot", "--scale", "0.05",
            "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        # Generated file is queryable.
        capsys.readouterr()
        assert main([
            "query", "--graph", str(out_path), "--seed", "0", "--top", "3",
        ]) == 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "orkut", "--out", "x.tsv"])


class TestServeBenchCommand:
    def test_synthetic_run_prints_report(self, tmp_path, capsys):
        json_path = tmp_path / "serve-bench.json"
        code = main([
            "serve-bench", "--nodes", "600", "--avg-degree", "6",
            "--workers", "2", "--clients", "2", "--requests", "10",
            "--top", "5", "--cache", "16", "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency histogram (ms)" in out
        assert "throughput" in out
        assert "latency p99" in out
        assert "cache" in out
        import json

        report = json.loads(json_path.read_text())
        assert report["schema"] == "repro-serving-report/1"
        assert report["kind"] == "serve-bench"
        assert report["config"]["workers"] == 2
        assert report["requests"] == 20
        assert report["errors"] == 0
        assert report["queries_per_second"] > 0

    def test_edge_list_graph_source(self, edge_file, capsys):
        code = main([
            "serve-bench", "--graph", str(edge_file),
            "--workers", "1", "--clients", "2", "--requests", "5",
        ])
        assert code == 0
        assert "throughput" in capsys.readouterr().out

    def test_graph_and_nodes_mutually_exclusive(self, edge_file):
        with pytest.raises(SystemExit):
            main([
                "serve-bench", "--graph", str(edge_file), "--nodes", "100",
            ])


class TestShardBenchCommand:
    def test_synthetic_run_prints_report(self, tmp_path, capsys):
        json_path = tmp_path / "shard-bench.json"
        code = main([
            "shard-bench", "--nodes", "600", "--avg-degree", "6",
            "--shards", "2", "--clients", "2", "--requests", "10",
            "--top", "5", "--cache", "16", "--reorder", "slashburn",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency histogram (ms)" in out
        assert "shards=2" in out
        assert "shard rows" in out
        assert "throughput" in out
        import json

        report = json.loads(json_path.read_text())
        # serve-bench and shard-bench share one versioned schema.
        assert report["schema"] == "repro-serving-report/1"
        assert report["kind"] == "shard-bench"
        assert report["config"]["shards"] == 2
        assert len(report["config"]["shard_rows"]) == 2
        assert report["requests"] == 20
        assert report["errors"] == 0
        assert report["queries_per_second"] > 0

    def test_no_reorder_leg(self, capsys):
        code = main([
            "shard-bench", "--nodes", "400", "--avg-degree", "6",
            "--shards", "2", "--clients", "1", "--requests", "5",
            "--reorder", "none",
        ])
        assert code == 0
        assert "throughput" in capsys.readouterr().out
