"""Tests for the ablation study and TPA's multi-seed queries."""

import numpy as np
import pytest

from repro.core.cpi import cpi
from repro.core.tpa import TPA
from repro.experiments.ablation import ablation_errors
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import run_experiment


class TestAblationErrors:
    def test_tuned_tpa_beats_both_ablations(self, medium_community):
        """With T tuned for these fast-mixing analogs (T = S + 1), full
        TPA beats dropping either approximation."""
        seeds = np.array([3, 140, 900])
        tpa, no_na, no_sa = ablation_errors(medium_community, 5, 6, seeds)
        assert tpa <= no_na + 1e-9
        assert tpa <= no_sa + 1e-9

    def test_stranger_approximation_is_essential(self, medium_community):
        """Dropping the stranger approximation hurts at any T."""
        seeds = np.array([3, 140, 900])
        for t in (6, 10, 15):
            tpa, _, no_sa = ablation_errors(medium_community, 5, t, seeds)
            assert tpa < no_sa

    def test_all_errors_positive(self, medium_community):
        seeds = np.array([5])
        errors = ablation_errors(medium_community, 5, 10, seeds)
        assert all(e > 0 for e in errors)

    def test_driver_runs(self):
        config = ExperimentConfig(
            scale=0.05, num_seeds=2, datasets=("slashdot",)
        )
        results = run_experiment("ablation", config)
        assert len(results) == 1
        row = results[0].rows[0]
        # Tuned TPA (col 2) beats the no-SA ablation (col 4); no-NA (col 3)
        # is the close competitor on fast-mixing tiny analogs.
        assert row[2] <= row[4] + 1e-9


class TestMultiSeedTPA:
    @pytest.fixture(scope="class")
    def method(self, medium_community):
        tpa = TPA(s_iteration=5, t_iteration=10)
        tpa.preprocess(medium_community)
        return tpa

    def test_singleton_set_matches_query(self, method):
        np.testing.assert_allclose(
            method.query_seed_set([9]), method.query(9)
        )

    def test_seed_set_error_within_bound(self, method, medium_community):
        seeds = [3, 77, 450]
        exact = cpi(medium_community, seeds, tol=1e-12).scores
        approx = method.query_seed_set(seeds)
        assert np.abs(exact - approx).sum() <= method.error_bound() + 1e-9

    def test_mass_is_one(self, method):
        assert method.query_seed_set([1, 2, 3]).sum() == pytest.approx(
            1.0, abs=1e-6
        )

    def test_seed_set_mixture_property(self, method):
        """RWR is linear in the seed vector: the set query equals the
        average of the individual queries."""
        combined = method.query_seed_set([4, 8])
        individual = 0.5 * (method.query(4) + method.query(8))
        np.testing.assert_allclose(combined, individual, atol=1e-12)
