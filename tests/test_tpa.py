"""Unit tests for repro.core.tpa — the paper's Algorithms 2 and 3."""

import numpy as np
import pytest

from repro.core.bounds import neighbor_scale, stranger_norm, total_bound
from repro.core.cpi import cpi
from repro.core.tpa import TPA
from repro.exceptions import NotPreprocessedError, ParameterError
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared_tpa(medium_community):
    method = TPA(s_iteration=5, t_iteration=10)
    method.preprocess(medium_community)
    return method


class TestPreprocessing:
    def test_stranger_vector_is_pagerank_tail(self, prepared_tpa, medium_community):
        """Algorithm 2: r̃_stranger = PageRank-CPI iterations T..∞."""
        expected = cpi(
            medium_community, None, start_iteration=prepared_tpa.t_iteration
        ).scores
        np.testing.assert_allclose(prepared_tpa.stranger_vector, expected)

    def test_stranger_norm_matches_lemma2(self, prepared_tpa):
        assert prepared_tpa.stranger_vector.sum() == pytest.approx(
            stranger_norm(0.15, prepared_tpa.t_iteration), abs=1e-8
        )

    def test_preprocessed_bytes_is_one_vector(self, prepared_tpa, medium_community):
        assert prepared_tpa.preprocessed_bytes() == medium_community.num_nodes * 8

    def test_unpreprocessed_bytes_zero(self):
        assert TPA().preprocessed_bytes() == 0

    def test_query_before_preprocess_raises(self):
        with pytest.raises(NotPreprocessedError):
            TPA().query(0)

    def test_stranger_vector_before_preprocess_raises(self):
        with pytest.raises(NotPreprocessedError):
            _ = TPA().stranger_vector


class TestOnlinePhase:
    def test_error_within_theorem2_bound(self, prepared_tpa, medium_community):
        for seed in (0, 17, 256):
            exact = rwr_direct(medium_community, seed)
            approx = prepared_tpa.query(seed)
            error = np.abs(exact - approx).sum()
            assert error <= prepared_tpa.error_bound() + 1e-9

    def test_error_bound_value(self):
        method = TPA(s_iteration=5, t_iteration=10, c=0.15)
        assert method.error_bound() == pytest.approx(total_bound(0.15, 5))

    def test_parts_compose(self, prepared_tpa):
        parts = prepared_tpa.query_parts(3)
        np.testing.assert_allclose(
            parts.scores, parts.family + parts.neighbor + parts.stranger
        )

    def test_neighbor_is_scaled_family(self, prepared_tpa):
        parts = prepared_tpa.query_parts(3)
        scale = neighbor_scale(0.15, 5, 10)
        np.testing.assert_allclose(parts.neighbor, scale * parts.family)

    def test_total_mass_near_one(self, prepared_tpa):
        """‖r_TPA‖₁ = ‖family‖ + ‖neighbor‖ + ‖stranger‖ = 1 exactly."""
        scores = prepared_tpa.query(0)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_scores_non_negative(self, prepared_tpa):
        assert (prepared_tpa.query(5) >= 0).all()

    def test_seed_validation(self, prepared_tpa, medium_community):
        with pytest.raises(ValueError):
            prepared_tpa.query(medium_community.num_nodes)
        with pytest.raises(ValueError):
            prepared_tpa.query(-1)

    def test_family_matches_windowed_cpi(self, prepared_tpa, medium_community):
        parts = prepared_tpa.query_parts(9)
        expected = cpi(medium_community, 9, terminal_iteration=4).scores
        np.testing.assert_allclose(parts.family, expected)

    def test_top_scores_localized_near_seed(self, prepared_tpa, medium_community):
        """The seed itself should rank first in its own RWR vector."""
        seed = 42
        scores = prepared_tpa.query(seed)
        assert int(np.argmax(scores)) == seed


class TestParameters:
    def test_t_equals_s_disables_neighbor(self, small_community):
        method = TPA(s_iteration=5, t_iteration=5)
        method.preprocess(small_community)
        parts = method.query_parts(0)
        assert np.abs(parts.neighbor).sum() == 0.0

    def test_larger_s_reduces_error(self, medium_community):
        exact = rwr_direct(medium_community, 11)
        errors = []
        for s in (2, 4, 6):
            method = TPA(s_iteration=s, t_iteration=10)
            method.preprocess(medium_community)
            errors.append(np.abs(exact - method.query(11)).sum())
        assert errors[0] > errors[-1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"s_iteration": 0},
            {"s_iteration": 5, "t_iteration": 4},
            {"c": 0.0},
            {"c": 1.0},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ParameterError):
            TPA(**kwargs)

    def test_repr_mentions_parameters(self):
        text = repr(TPA(s_iteration=3, t_iteration=8))
        assert "S=3" in text and "T=8" in text
