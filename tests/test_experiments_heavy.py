"""Driver tests for the heavier experiments (fig1, fig7, fig3, scaling)
at tiny scale — plumbing and qualitative-shape checks."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        scale=0.05,
        num_seeds=2,
        hubppr_seeds=1,
        datasets=("slashdot", "google"),
    )


class TestFig1Driver:
    @pytest.fixture(scope="class")
    def results(self, tiny_config):
        return run_experiment("fig1", tiny_config)

    def test_three_tables(self, results):
        assert [r.experiment_id for r in results] == ["fig1a", "fig1b", "fig1c"]

    def test_row_per_dataset(self, results):
        for table in results:
            assert [row[0] for row in table.rows] == ["slashdot", "google"]

    def test_tpa_smallest_index(self, results):
        size_table = results[0]
        # Column 1 is TPA; parse back the "x KB" strings via ordering of
        # raw byte counts is lost, so assert it is KB while others are MB
        # or at minimum that no OOM appears at tiny scale.
        for row in size_table.rows:
            assert "OOM" not in row[1:]
            assert row[1].endswith("KB") or row[1].endswith("B")

    def test_online_times_numeric(self, results):
        online = results[2]
        for row in online.rows:
            tpa_seconds = row[1]
            assert isinstance(tpa_seconds, float) and tpa_seconds > 0


class TestFig7Driver:
    def test_recall_rows(self, tiny_config):
        config = tiny_config.with_datasets("slashdot")
        results = run_experiment("fig7", config)
        assert len(results) == 1
        table = results[0]
        methods = [row[0] for row in table.rows]
        assert methods == ["TPA", "BRPPR", "FORA", "BEAR_APPROX", "HubPPR", "NB_LIN"]
        for row in table.rows:
            for cell in row[1:]:
                if cell != "OOM":
                    assert 0.0 <= cell <= 1.0


class TestFig3Driver:
    def test_density_and_grids(self, tiny_config):
        results = run_experiment("fig3", tiny_config)
        density = results[0]
        values = [row[2] for row in density.rows]
        assert values == sorted(values)  # densifies monotonically
        assert len(results) == 5  # density table + 4 grids


class TestScalingDriver:
    def test_exponents_reported(self):
        config = ExperimentConfig(scale=0.05, num_seeds=2)
        results = run_experiment("scaling", config)
        table = results[0]
        assert len(table.rows) == 5
        assert len(table.notes) == 3
        for note in table.notes:
            assert "growth exponent" in note
