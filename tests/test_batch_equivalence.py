"""Batch-vs-single equivalence: ``query_many`` must reproduce ``query``.

Property-style checks over every registry method on a small community
graph: the rows of one batched call equal the stacked single-seed queries
of an identically-constructed fresh instance (fresh, so stochastic methods
consume their RNG streams the same way in both runs).  The vectorized
overrides (TPA, CPI, BRPPR/RPPR, NB_LIN, BEAR, BePI) are additionally held
to near-bitwise tolerance.

Also covers the seed-dtype normalization regression: every entry point
accepts NumPy integer seeds and rejects floats/bools uniformly.
"""

import numpy as np
import pytest

from repro.engine import available_methods, create_method
from repro.method import select_top_k

#: Constructor overrides keeping the slow stochastic methods tractable on
#: the 400-node fixture; everything else runs with registry defaults.
FAST_PARAMS: dict[str, dict] = {
    "tpa": dict(s_iteration=4, t_iteration=8),
    "nblin": dict(rank=20, seed=0),
    "hubppr": dict(seed=0, max_walks=5_000, refine_top=30),
    "fora": dict(seed=0),
    "bippr": dict(seed=0, max_walks=10_000),
    "fastppr": dict(seed=0, max_walks=10_000),
}

#: Methods whose ``_query_many`` is a true vectorized override; their
#: batched rows must match single-seed queries to float-roundoff levels.
VECTORIZED = ("tpa", "cpi", "brppr", "rppr", "nblin", "bear", "bepi")

SEEDS = np.array([0, 7, 33, 250, 7, 399], dtype=np.int64)


def _make(name):
    return create_method(name, **FAST_PARAMS.get(name, {}))


@pytest.mark.parametrize("name", available_methods())
def test_query_many_matches_single_queries(name, small_community):
    batched = _make(name)
    batched.preprocess(small_community)
    matrix = batched.query_many(SEEDS)
    assert matrix.shape == (SEEDS.size, small_community.num_nodes)

    looped = _make(name)
    looped.preprocess(small_community)
    stacked = np.stack([looped.query(int(seed)) for seed in SEEDS])
    np.testing.assert_allclose(matrix, stacked, rtol=1e-12, atol=1e-15)


@pytest.mark.parametrize("name", VECTORIZED)
def test_vectorized_overrides_are_exact(name, small_community):
    """The power-iteration methods propagate the whole seed matrix; their
    batched arithmetic is engineered to match the single-seed run bit for
    bit (NB_LIN's dense BLAS path is allowed last-ulp drift)."""
    method = _make(name)
    method.preprocess(small_community)
    matrix = method.query_many(SEEDS)
    stacked = np.stack([method.query(int(seed)) for seed in SEEDS])
    if name == "nblin":
        np.testing.assert_allclose(matrix, stacked, rtol=0, atol=1e-14)
    else:
        np.testing.assert_array_equal(matrix, stacked)


def test_query_many_on_disk_graph(small_community, tmp_path):
    """Batched queries work on duck-typed substrates without an in-memory
    CSR transition (regression: the gather fast paths must not assume
    Graph internals)."""
    from repro.graph.diskgraph import DiskGraph

    disk = DiskGraph.build(small_community, tmp_path / "disk",
                           rows_per_stripe=64)
    method = _make("tpa")
    method.preprocess(disk)
    matrix = method.query_many(SEEDS[:3])
    stacked = np.stack([method.query(int(seed)) for seed in SEEDS[:3]])
    np.testing.assert_allclose(matrix, stacked, rtol=1e-12, atol=1e-15)

    reference = _make("tpa")
    reference.preprocess(small_community)
    np.testing.assert_allclose(
        matrix, reference.query_many(SEEDS[:3]), rtol=1e-9, atol=1e-12
    )


def test_query_many_empty_batch(small_community):
    method = _make("tpa")
    method.preprocess(small_community)
    result = method.query_many([])
    assert result.shape == (0, small_community.num_nodes)


def test_top_k_many_matches_top_k(small_community):
    method = _make("tpa")
    method.preprocess(small_community)
    seeds = [3, 11, 3]
    rankings = method.top_k_many(seeds, 20, exclude_neighbors=True)
    assert rankings.shape == (3, 20)
    for row, seed in zip(rankings, seeds):
        expected = method.top_k(seed, 20, exclude_neighbors=True)
        np.testing.assert_array_equal(row[: expected.size], expected)
        assert (row[expected.size:] == -1).all()


def test_top_k_many_pads_with_minus_one(tiny_ring):
    method = _make("cpi")
    method.preprocess(tiny_ring)
    rankings = method.top_k_many([0], 50)
    assert rankings.shape == (1, 50)
    # 10-node ring, seed excluded: 9 real entries then padding.
    assert (rankings[0, :9] >= 0).all()
    assert (rankings[0, 9:] == -1).all()


class TestTopKSelection:
    """select_top_k must reproduce the stable full-argsort ranking."""

    def test_matches_stable_argsort(self, rng):
        scores = rng.random(500)
        scores[100:120] = scores[100]  # force ties
        reference = np.argsort(-scores, kind="stable")[:50]
        np.testing.assert_array_equal(select_top_k(scores, 50), reference)

    def test_banned_filtering(self, rng):
        scores = rng.random(300)
        banned = np.zeros(300, dtype=bool)
        banned[scores.argmax()] = True
        banned[:50] = True
        picks = select_top_k(scores, 40, banned)
        assert not banned[picks].any()
        reference = [i for i in np.argsort(-scores, kind="stable")
                     if not banned[i]][:40]
        np.testing.assert_array_equal(picks, reference)

    def test_k_larger_than_available(self):
        scores = np.array([0.5, 0.1, 0.9])
        banned = np.array([False, True, False])
        picks = select_top_k(scores, 10, banned)
        np.testing.assert_array_equal(picks, [2, 0])

    def test_everything_banned(self):
        scores = np.array([0.5, 0.1])
        picks = select_top_k(scores, 3, np.array([True, True]))
        assert picks.size == 0


class TestSeedNormalization:
    """Regression: seed dtype handling is uniform across all baselines."""

    @pytest.fixture(scope="class")
    def method(self, small_community):
        method = _make("tpa")
        method.preprocess(small_community)
        return method

    @pytest.mark.parametrize("dtype", [np.int8, np.int32, np.int64,
                                       np.uint8, np.uint32])
    def test_numpy_integer_scalars_accepted(self, method, dtype):
        expected = method.query(5)
        np.testing.assert_array_equal(method.query(dtype(5)), expected)
        assert method.top_k(dtype(5), 3).size == 3

    def test_numpy_integer_scalars_accepted_everywhere(self, small_community):
        for name in ("brppr", "fora", "bear", "bepi"):
            method = _make(name)
            method.preprocess(small_community)
            np.testing.assert_array_equal(
                method.query(np.int32(4)), method.query(4)
            )

    @pytest.mark.parametrize("bad", [1.5, np.float64(2.0), "3", None, True,
                                     np.bool_(True)])
    def test_non_integer_scalars_rejected(self, method, bad):
        with pytest.raises(TypeError):
            method.query(bad)

    def test_integer_array_dtypes_accepted(self, method):
        expected = method.query_many(np.array([1, 2], dtype=np.int64))
        for dtype in (np.int16, np.int32, np.uint16):
            got = method.query_many(np.array([1, 2], dtype=dtype))
            np.testing.assert_array_equal(got, expected)

    def test_float_and_bool_arrays_rejected(self, method):
        with pytest.raises(TypeError):
            method.query_many(np.array([1.0, 2.0]))
        with pytest.raises(TypeError):
            method.query_many(np.array([True, False]))

    def test_out_of_range_batch_rejected(self, method, small_community):
        n = small_community.num_nodes
        with pytest.raises(ValueError):
            method.query_many([0, n])
        with pytest.raises(ValueError):
            method.query_many([-1, 0])

    def test_two_dimensional_batch_rejected(self, method):
        with pytest.raises(ValueError):
            method.query_many(np.array([[1, 2], [3, 4]]))

    def test_cpi_many_rejects_float_seeds(self, small_community):
        """The low-level batched CPI enforces the same dtype rules — no
        silent float truncation through the public cpi_many export."""
        from repro.core.cpi import cpi_many
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="integer"):
            cpi_many(small_community, [1.9])
        with pytest.raises(ParameterError, match="integer"):
            cpi_many(small_community, np.array([True, False]))
