"""Unit tests for repro.core.bounds — Lemmas 1-3, Theorem 2 formulas."""

import math

import pytest

from repro.core.bounds import (
    convergence_iterations,
    family_norm,
    neighbor_bound,
    neighbor_norm,
    neighbor_scale,
    stranger_bound,
    stranger_norm,
    total_bound,
)
from repro.exceptions import ParameterError


class TestNorms:
    def test_family_norm_formula(self):
        assert family_norm(0.15, 5) == pytest.approx(1 - 0.85**5)

    def test_neighbor_norm_formula(self):
        assert neighbor_norm(0.15, 5, 10) == pytest.approx(0.85**5 - 0.85**10)

    def test_stranger_norm_formula(self):
        assert stranger_norm(0.15, 10) == pytest.approx(0.85**10)

    def test_three_parts_sum_to_one(self):
        c, s, t = 0.15, 5, 10
        total = family_norm(c, s) + neighbor_norm(c, s, t) + stranger_norm(c, t)
        assert total == pytest.approx(1.0)

    def test_parts_sum_for_any_parameters(self):
        for c in (0.05, 0.15, 0.5, 0.9):
            for s, t in ((1, 2), (3, 20), (5, 6)):
                total = (
                    family_norm(c, s)
                    + neighbor_norm(c, s, t)
                    + stranger_norm(c, t)
                )
                assert total == pytest.approx(1.0)

    def test_neighbor_norm_empty_when_t_equals_s(self):
        assert neighbor_norm(0.15, 5, 5) == pytest.approx(0.0)

    def test_family_norm_monotone_in_s(self):
        values = [family_norm(0.15, s) for s in range(1, 10)]
        assert values == sorted(values)

    def test_stranger_norm_decreasing_in_t(self):
        values = [stranger_norm(0.15, t) for t in range(1, 10)]
        assert values == sorted(values, reverse=True)


class TestScale:
    def test_scale_formula(self):
        expected = (0.85**5 - 0.85**10) / (1 - 0.85**5)
        assert neighbor_scale(0.15, 5, 10) == pytest.approx(expected)

    def test_scale_zero_when_t_equals_s(self):
        assert neighbor_scale(0.15, 5, 5) == pytest.approx(0.0)

    def test_scale_geometric_identity(self):
        """(1-c)^S - (1-c)^T over 1-(1-c)^S equals the geometric sum
        (1-c)^S + (1-c)^2S + ... when T = kS (proof of Lemma 3)."""
        c, s, k = 0.15, 3, 4
        t = k * s
        geometric = sum((1 - c) ** (i * s) for i in range(1, k))
        assert neighbor_scale(c, s, t) == pytest.approx(geometric)


class TestBounds:
    def test_stranger_bound(self):
        assert stranger_bound(0.15, 10) == pytest.approx(2 * 0.85**10)

    def test_neighbor_bound(self):
        assert neighbor_bound(0.15, 5, 10) == pytest.approx(
            2 * 0.85**5 - 2 * 0.85**10
        )

    def test_total_bound(self):
        assert total_bound(0.15, 5) == pytest.approx(2 * 0.85**5)

    def test_bounds_compose(self):
        """Theorem 2 = Lemma 1 + Lemma 3 bounds."""
        c, s, t = 0.15, 5, 10
        assert total_bound(c, s) == pytest.approx(
            stranger_bound(c, t) + neighbor_bound(c, s, t)
        )

    def test_paper_table3_bound_values(self):
        """The theoretical bound column of Table III."""
        # Slashdot: S=5, T=15.
        assert neighbor_bound(0.15, 5, 15) == pytest.approx(0.7127, abs=1e-4)
        assert stranger_bound(0.15, 15) == pytest.approx(0.1747, abs=1e-4)
        assert total_bound(0.15, 5) == pytest.approx(0.8874, abs=1e-4)
        # Twitter: S=4, T=6.
        assert total_bound(0.15, 4) == pytest.approx(1.0440, abs=1e-4)
        assert stranger_bound(0.15, 6) == pytest.approx(0.7543, abs=1e-4)


class TestConvergenceIterations:
    def test_matches_closed_form(self):
        c, tol = 0.15, 1e-9
        expected = math.ceil(math.log(tol / c) / math.log(1 - c))
        assert convergence_iterations(c, tol) == expected

    def test_loose_tolerance_needs_no_iterations(self):
        assert convergence_iterations(0.15, 0.5) == 0

    def test_tolerance_positive(self):
        with pytest.raises(ParameterError):
            convergence_iterations(0.15, 0.0)


class TestValidation:
    @pytest.mark.parametrize("c", [0.0, 1.0, -1.0, 2.0])
    def test_invalid_c(self, c):
        with pytest.raises(ParameterError):
            family_norm(c, 5)

    def test_invalid_s(self):
        with pytest.raises(ParameterError):
            family_norm(0.15, 0)

    def test_t_below_s(self):
        with pytest.raises(ParameterError):
            neighbor_norm(0.15, 5, 4)
