"""Tests for the method registry (repro.engine.registry)."""

import pytest

from repro.engine import (
    available_methods,
    create_method,
    method_spec,
    register_method,
)
from repro.engine.registry import _LOOKUP, _REGISTRY
from repro.exceptions import ParameterError
from repro.method import PPRMethod

#: Fast constructor overrides for the round-trip test (keep the stochastic
#: methods' preprocessing small on the 400-node fixture).
FAST_PARAMS = {
    "tpa": dict(s_iteration=3, t_iteration=6),
    "nblin": dict(rank=10, seed=0),
    "hubppr": dict(seed=0, max_walks=2_000, refine_top=10),
}


class TestResolution:
    def test_expected_suite_registered(self):
        names = available_methods()
        for expected in ("tpa", "cpi", "brppr", "rppr", "fora", "bear",
                         "hubppr", "nblin", "bepi"):
            assert expected in names

    def test_unknown_method_lists_choices(self):
        with pytest.raises(ParameterError, match="available:"):
            create_method("pagerank-turbo")

    def test_case_and_separator_insensitive(self):
        assert method_spec("TPA").name == "tpa"
        assert method_spec("NB_LIN").name == "nblin"
        assert method_spec("nb-lin").name == "nblin"
        assert method_spec("BEAR_APPROX").name == "bear"
        assert method_spec("HubPPR").name == "hubppr"

    def test_params_forwarded(self):
        method = create_method("tpa", s_iteration=7, t_iteration=9)
        assert method.s_iteration == 7
        assert method.t_iteration == 9

    def test_collision_rejected(self):
        with pytest.raises(ParameterError, match="collides"):
            register_method("t-p-a", lambda: None)  # normalizes to "tpa"

    def test_registration_round_trip(self):
        class Custom(PPRMethod):
            name = "Custom"

            def _preprocess(self, graph):
                pass

            def _query(self, seed):
                raise NotImplementedError

            def preprocessed_bytes(self):
                return 0

        try:
            register_method("custom-test", Custom, "test-only entry")
            assert "custom-test" in available_methods()
            assert isinstance(create_method("CUSTOM_TEST"), Custom)
        finally:
            _REGISTRY.pop("custom-test", None)
            _LOOKUP.pop("customtest", None)


class TestRoundTrip:
    @pytest.mark.parametrize("name", available_methods())
    def test_every_method_constructs_and_answers(self, name, small_community):
        """create_method(name) for every available_methods() entry yields a
        working PPRMethod: preprocess, query, query_many, top_k."""
        method = create_method(name, **FAST_PARAMS.get(name, {}))
        assert isinstance(method, PPRMethod)
        assert not method.is_preprocessed
        method.preprocess(small_community)
        scores = method.query(3)
        assert scores.shape == (small_community.num_nodes,)
        assert method.query_many([3, 4]).shape == (
            2, small_community.num_nodes
        )
        assert method.top_k(3, 5).size == 5
        assert method.preprocessed_bytes() >= 0

    def test_descriptions_present(self):
        for name in available_methods():
            assert method_spec(name).description
