"""Unit tests for repro.core.cpi — Algorithm 1 and its windowing."""

import numpy as np
import pytest

from repro.core.bounds import family_norm, neighbor_norm, stranger_norm
from repro.core.cpi import cpi, cpi_iterates, cpi_parts, seed_vector
from repro.exceptions import ConvergenceError, ParameterError
from repro.ranking.rwr import rwr_direct


class TestSeedVector:
    def test_single_seed(self, small_community):
        q = seed_vector(small_community, 3)
        assert q[3] == 1.0
        assert q.sum() == 1.0

    def test_multi_seed(self, small_community):
        q = seed_vector(small_community, [1, 2, 3, 4])
        assert q[1] == pytest.approx(0.25)
        assert q.sum() == pytest.approx(1.0)

    def test_pagerank_seed(self, small_community):
        q = seed_vector(small_community, None)
        n = small_community.num_nodes
        np.testing.assert_allclose(q, 1.0 / n)

    def test_empty_seed_set(self, small_community):
        with pytest.raises(ParameterError):
            seed_vector(small_community, [])

    def test_out_of_range_seed(self, small_community):
        with pytest.raises(ParameterError):
            seed_vector(small_community, small_community.num_nodes)


class TestCPIConvergence:
    def test_matches_direct_solve(self, small_community):
        exact = rwr_direct(small_community, 5, c=0.15)
        result = cpi(small_community, 5, c=0.15, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.scores, exact, atol=1e-10)

    def test_total_mass_is_one(self, small_community):
        result = cpi(small_community, 0, tol=1e-12)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_scores_non_negative(self, small_community):
        result = cpi(small_community, 0)
        assert (result.scores >= 0).all()

    def test_residual_below_tolerance(self, small_community):
        result = cpi(small_community, 0, tol=1e-6)
        assert result.converged
        assert result.residual_norm < 1e-6

    def test_iteration_count_matches_theory(self, small_community):
        """‖x(i)‖₁ = c(1-c)^i exactly, so the stop iteration is predictable."""
        from repro.core.bounds import convergence_iterations

        c, tol = 0.15, 1e-9
        result = cpi(small_community, 0, c=c, tol=tol)
        assert result.iterations == convergence_iterations(c, tol)

    def test_max_iterations_enforced(self, small_community):
        with pytest.raises(ConvergenceError):
            cpi(small_community, 0, tol=1e-12, max_iterations=5)

    def test_interim_norm_formula(self, small_community):
        """After i iterations the interim vector has mass exactly c(1-c)^i."""
        c = 0.2
        for i, x in enumerate(cpi_iterates(small_community, 3, c=c, max_iterations=6)):
            assert np.abs(x).sum() == pytest.approx(c * (1 - c) ** i)


class TestCPIWindows:
    def test_family_window_norm(self, small_community):
        """Lemma 2: ‖r_family‖₁ = 1 - (1-c)^S."""
        c, s = 0.15, 5
        result = cpi(
            small_community, 2, c=c, start_iteration=0, terminal_iteration=s - 1
        )
        assert result.scores.sum() == pytest.approx(family_norm(c, s))

    def test_single_term_window(self, small_community):
        """S=1 family is just x(0) = c e_s."""
        result = cpi(small_community, 4, c=0.15, terminal_iteration=0)
        assert result.scores[4] == pytest.approx(0.15)
        assert result.scores.sum() == pytest.approx(0.15)

    def test_tail_window_norm(self, small_community):
        """The tail from T has mass (1-c)^T."""
        c, t = 0.15, 7
        result = cpi(small_community, 2, c=c, tol=1e-12, start_iteration=t)
        assert result.scores.sum() == pytest.approx(stranger_norm(c, t), abs=1e-9)

    def test_windows_partition_the_series(self, small_community):
        """family + neighbor + stranger == full CPI."""
        c, s, t = 0.15, 4, 9
        full = cpi(small_community, 6, c=c, tol=1e-12).scores
        family = cpi(small_community, 6, c=c, terminal_iteration=s - 1).scores
        neighbor = cpi(
            small_community, 6, c=c, start_iteration=s, terminal_iteration=t - 1
        ).scores
        stranger = cpi(small_community, 6, c=c, tol=1e-12, start_iteration=t).scores
        np.testing.assert_allclose(family + neighbor + stranger, full, atol=1e-9)

    def test_invalid_window(self, small_community):
        with pytest.raises(ParameterError):
            cpi(small_community, 0, start_iteration=5, terminal_iteration=3)

    def test_negative_start(self, small_community):
        with pytest.raises(ParameterError):
            cpi(small_community, 0, start_iteration=-1)


class TestCPIParts:
    def test_parts_sum_to_full(self, small_community):
        full = cpi(small_community, 7, tol=1e-12).scores
        family, neighbor, stranger = cpi_parts(
            small_community, 7, 5, 10, tol=1e-12
        )
        np.testing.assert_allclose(family + neighbor + stranger, full, atol=1e-9)

    def test_part_norms_match_lemma2(self, small_community):
        c, s, t = 0.15, 5, 10
        family, neighbor, stranger = cpi_parts(
            small_community, 7, s, t, c=c, tol=1e-12
        )
        assert family.sum() == pytest.approx(family_norm(c, s))
        assert neighbor.sum() == pytest.approx(neighbor_norm(c, s, t))
        assert stranger.sum() == pytest.approx(stranger_norm(c, t), abs=1e-9)

    def test_t_equals_s_gives_empty_neighbor(self, small_community):
        family, neighbor, stranger = cpi_parts(small_community, 7, 5, 5)
        assert np.abs(neighbor).sum() == 0.0

    def test_invalid_parameters(self, small_community):
        with pytest.raises(ParameterError):
            cpi_parts(small_community, 7, 0, 5)
        with pytest.raises(ParameterError):
            cpi_parts(small_community, 7, 5, 4)


class TestCPIParameterValidation:
    @pytest.mark.parametrize("c", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_restart_probability(self, small_community, c):
        with pytest.raises(ParameterError):
            cpi(small_community, 0, c=c)

    def test_invalid_tolerance(self, small_community):
        with pytest.raises(ParameterError):
            cpi(small_community, 0, tol=0.0)

    def test_pagerank_mode(self, small_community):
        result = cpi(small_community, None, tol=1e-12)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)
