"""Unit tests for repro.graph.stats."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph import (
    community_graph,
    complete_graph,
    gini_coefficient,
    gnm_random_graph,
    graph_stats,
    intra_community_fraction,
    reciprocity,
    ring_graph,
    star_graph,
)
from repro.graph.partition import partition_graph


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_near_one(self):
        values = np.zeros(1000)
        values[0] = 1.0
        assert gini_coefficient(values) > 0.99

    def test_known_value(self):
        # Two people, one has everything: G = 1/2.
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 3.0, 10.0])
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(10 * values)
        )

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            gini_coefficient(np.array([]))
        with pytest.raises(ParameterError):
            gini_coefficient(np.array([-1.0]))


class TestReciprocity:
    def test_ring_has_none(self):
        assert reciprocity(ring_graph(10)) == 0.0

    def test_star_fully_reciprocal(self):
        assert reciprocity(star_graph(8)) == 1.0

    def test_complete_fully_reciprocal(self):
        assert reciprocity(complete_graph(5)) == 1.0

    def test_generator_reciprocity_ordering(self):
        low = community_graph(500, avg_degree=8, reciprocity=0.0, seed=1)
        high = community_graph(500, avg_degree=8, reciprocity=0.8, seed=1)
        assert reciprocity(high) > reciprocity(low)


class TestIntraCommunityFraction:
    def test_single_partition_is_one(self, small_community):
        labels = np.zeros(small_community.num_nodes, dtype=np.int64)
        assert intra_community_fraction(small_community, labels) == 1.0

    def test_planted_structure_detected(self):
        graph = community_graph(
            400, avg_degree=8, num_communities=8, p_in=0.95, seed=2
        )
        labels = partition_graph(graph, 8, seed=0)
        planted = intra_community_fraction(graph, labels)
        random_graph = gnm_random_graph(400, graph.num_edges, seed=3)
        random_labels = partition_graph(random_graph, 8, seed=0)
        assert planted > intra_community_fraction(random_graph, random_labels)

    def test_label_shape_checked(self, small_community):
        with pytest.raises(ParameterError):
            intra_community_fraction(small_community, np.zeros(3))


class TestGraphStats:
    def test_basic_fields(self, small_community):
        stats = graph_stats(small_community)
        assert stats.num_nodes == small_community.num_nodes
        assert stats.num_edges == small_community.num_edges
        assert stats.mean_degree == pytest.approx(
            small_community.num_edges / small_community.num_nodes
        )
        assert stats.dangling_nodes == 0

    def test_community_graph_is_skewed(self):
        graph = community_graph(1000, avg_degree=8, seed=4)
        stats = graph_stats(graph)
        assert stats.in_degree_gini > 0.3

    def test_er_graph_is_flat(self):
        graph = gnm_random_graph(1000, 8000, seed=5)
        stats = graph_stats(graph)
        assert stats.in_degree_gini < 0.3

    def test_analog_has_paper_properties(self):
        """The dataset analogs must actually plant what the paper needs:
        skew + reciprocity + community structure."""
        from repro.graph.datasets import load_dataset

        graph = load_dataset("slashdot", scale=0.5)
        stats = graph_stats(graph)
        assert stats.in_degree_gini > 0.3          # heavy-tailed in-degrees
        assert stats.reciprocity > 0.1             # social reciprocity
        assert stats.max_in_degree > 10 * stats.mean_degree
