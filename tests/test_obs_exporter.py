"""Tests for the operational surface: the live HTTP exporter, the
cross-process sampling profiler, and structured logging.

The load-bearing guarantees:

* **Scrape correctness under fire** — eight threads hammering
  ``/metrics`` and ``/snapshot`` during a fault-injected (worker-kill +
  respawn) shard bench get strictly parseable exposition on every
  response, counters stay monotonic, and the respawn shows up.
* **Leave nothing behind** — ``close()`` joins the listener thread and
  releases the port, the same contract the shm store gives /dev/shm.
* **Cross-process profiles** — a profiled sharded run merges samples
  from the router *and* every worker pid, shipped on step replies.
"""

from __future__ import annotations

import io
import json
import logging
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import kernels
from repro.engine import Engine, QueryRequest
from repro.core.tpa import TPA
from repro.obs import exporter as obs_exporter
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.exporter import EXPORTER_THREAD_NAME, ObsExporter, start_exporter
from repro.resilience import faults
from repro.serving import Server
from repro.sharding import Router


@pytest.fixture(autouse=True)
def clean_obs_state(monkeypatch):
    """Fresh registry/spans/profiler, no obs env leakage, and whatever
    env exporter singleton a test created is torn down after it."""
    monkeypatch.delenv(obs_exporter.OBS_PORT_ENV_VAR, raising=False)
    monkeypatch.delenv(obs_profile.PROFILE_ENV_VAR, raising=False)
    monkeypatch.delenv(obs_profile.PROFILE_HZ_ENV_VAR, raising=False)
    monkeypatch.delenv(obs_logs.LOG_ENV_VAR, raising=False)
    obs_metrics.get_registry().reset()
    obs_metrics.set_metrics_enabled(None)
    obs_trace.clear_spans()
    obs_trace.set_tracing(None)
    obs_profile.reset()
    obs_profile.set_profiling(None)
    obs_profile.set_profile_hz(None)
    yield
    obs_profile.reset()
    obs_profile.set_profiling(None)
    obs_profile.set_profile_hz(None)
    obs_metrics.get_registry().reset()
    obs_metrics.set_metrics_enabled(None)
    obs_trace.clear_spans()
    obs_trace.set_tracing(None)
    with obs_exporter._env_lock:
        if obs_exporter._env_exporter is not None:
            obs_exporter._env_exporter.close()
            obs_exporter._env_exporter = None
    obs_logs.logging_setup(force=True)


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    faults.reset_fault_plan()
    yield
    faults.reset_fault_plan()
    faults.set_scope("main", 0)


@pytest.fixture
def fork_numpy():
    """NumPy backend so shard workers fork (fast startup)."""
    previous = kernels.get_backend()
    kernels.set_backend("numpy")
    yield "numpy"
    kernels.set_backend(previous)


def get(url: str, timeout: float = 10.0):
    """(status, body-bytes) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def exporter_threads() -> list[threading.Thread]:
    return [
        thread for thread in threading.enumerate()
        if thread.name == EXPORTER_THREAD_NAME
    ]


def assert_port_released(port: int) -> None:
    probe = socket.socket()
    probe.settimeout(1.0)
    try:
        with pytest.raises(OSError):
            probe.connect(("127.0.0.1", port))
    finally:
        probe.close()


# -- exporter unit behaviour ---------------------------------------------------


class TestObsExporter:
    def test_metrics_endpoint_parses_strictly(self):
        obs_metrics.get_registry().counter(
            "repro_test_total", "help me").inc(3)
        with ObsExporter(0) as exporter:
            status, body = get(exporter.url("/metrics"))
        assert status == 200
        families = obs_metrics.parse_prometheus_text(body.decode())
        assert families["repro_test_total"]["samples"][0][2] == 3.0

    def test_snapshot_endpoint_is_schema_stamped_json(self):
        with ObsExporter(0) as exporter:
            status, body = get(exporter.url("/snapshot"))
        assert status == 200
        assert json.loads(body)["schema"] == obs_metrics.METRICS_SCHEMA

    def test_traces_endpoint_serves_trace_schema(self):
        with ObsExporter(0) as exporter:
            status, body = get(exporter.url("/traces"))
        assert status == 200
        assert json.loads(body)["schema"] == obs_trace.TRACE_SCHEMA

    def test_profile_endpoint_serves_profile_schema(self):
        with ObsExporter(0) as exporter:
            status, body = get(exporter.url("/profile"))
        assert status == 200
        assert json.loads(body)["schema"] == obs_profile.PROFILE_SCHEMA

    def test_unknown_path_404_lists_endpoints(self):
        with ObsExporter(0) as exporter:
            status, body = get(exporter.url("/nope"))
        assert status == 404
        assert "/metrics" in json.loads(body)["paths"]

    def test_health_follows_registered_checks(self):
        with ObsExporter(0) as exporter:
            status, body = get(exporter.url("/health"))
            assert status == 200
            assert json.loads(body)["ready"] is True
            exporter.add_check("down", lambda: {"ready": False, "why": "x"})
            status, body = get(exporter.url("/health"))
            assert status == 503
            document = json.loads(body)
            assert document["ready"] is False
            assert document["checks"]["down"]["why"] == "x"
            exporter.remove_check("down")
            status, _ = get(exporter.url("/health"))
            assert status == 200

    def test_raising_check_means_unready_not_500(self):
        def broken():
            raise RuntimeError("too broken to introspect")

        with ObsExporter(0) as exporter:
            exporter.add_check("broken", broken)
            status, body = get(exporter.url("/health"))
        assert status == 503
        assert "RuntimeError" in json.loads(body)["checks"]["broken"]["error"]

    def test_collectors_refresh_before_scrape(self):
        gauge = obs_metrics.get_registry().gauge("repro_fresh", "scrape-time")
        calls = []
        with ObsExporter(0) as exporter:
            exporter.add_collector(
                "fresh", lambda: (calls.append(1), gauge.set(len(calls)))
            )
            _, body = get(exporter.url("/metrics"))
            families = obs_metrics.parse_prometheus_text(body.decode())
            assert families["repro_fresh"]["samples"][0][2] == 1.0
            _, body = get(exporter.url("/snapshot"))
            assert len(calls) == 2

    def test_close_releases_thread_and_port(self):
        exporter = ObsExporter(0)
        port = exporter.port
        assert exporter_threads()
        exporter.close()
        exporter.close()  # idempotent
        assert exporter.closed
        assert not exporter_threads()
        assert_port_released(port)

    def test_start_exporter_env_unset_is_none(self):
        assert start_exporter(None) == (None, False)

    def test_start_exporter_env_is_process_singleton(self, monkeypatch):
        monkeypatch.setenv(obs_exporter.OBS_PORT_ENV_VAR, "0")
        first, owned_first = start_exporter(None)
        second, owned_second = start_exporter(None)
        assert first is second
        assert (owned_first, owned_second) == (False, False)

    def test_start_exporter_explicit_port_is_owned(self):
        exporter, owned = start_exporter(0)
        try:
            assert owned is True
        finally:
            exporter.close()


# -- deployment wiring ---------------------------------------------------------


class TestDeploymentExporters:
    def test_engine_obs_port_serves_and_closes(self, small_community):
        engine = Engine(TPA(s_iteration=3, t_iteration=6), small_community,
                        obs_port=0)
        try:
            engine.query(0, k=5)
            status, _ = get(engine.exporter.url("/health"))
            assert status == 200
            _, body = get(engine.exporter.url("/metrics"))
            obs_metrics.parse_prometheus_text(body.decode())
            port = engine.exporter.port
        finally:
            engine.close()
        assert engine.exporter is None
        assert_port_released(port)

    def test_server_health_reflects_thread_liveness(self, small_community):
        with Server(TPA(s_iteration=3, t_iteration=6), small_community,
                    workers=2, supervise=False, obs_port=0) as server:
            status, body = get(server.exporter.url("/health"))
            assert status == 200
            detail = json.loads(body)["checks"][server._obs_name]
            assert detail["workers_alive"] == 2

    def test_env_port_shares_one_listener_across_deployments(
        self, small_community, monkeypatch, fork_numpy
    ):
        monkeypatch.setenv(obs_exporter.OBS_PORT_ENV_VAR, "0")
        method = TPA(s_iteration=3, t_iteration=6)
        with Server(method, small_community, workers=1,
                    supervise=False) as server:
            engine = Engine(TPA(s_iteration=3, t_iteration=6),
                            small_community)
            try:
                assert engine.exporter is server.exporter
                status, body = get(server.exporter.url("/health"))
                assert status == 200
                checks = json.loads(body)["checks"]
                assert server._obs_name in checks
                assert engine._obs_name in checks
            finally:
                engine.close()
            # The engine's departure removed only its own check.
            _, body = get(server.exporter.url("/health"))
            assert engine._obs_name not in json.loads(body)["checks"]
        # close() never shuts the shared env listener down.
        assert exporter_threads()

    def test_router_serves_all_endpoints_under_load(
        self, small_community, fork_numpy
    ):
        with Router(TPA(s_iteration=3, t_iteration=6), small_community,
                    num_shards=4, reorder=None, supervise=False,
                    obs_port=0) as router:
            stop = threading.Event()

            def client():
                while not stop.is_set():
                    router.batch(
                        [QueryRequest(seed=s, k=5) for s in range(8)]
                    )

            thread = threading.Thread(target=client, daemon=True)
            thread.start()
            try:
                for path in ("/metrics", "/health", "/snapshot", "/traces"):
                    status, body = get(router.exporter.url(path))
                    assert status == 200, path
                    assert body
                _, body = get(router.exporter.url("/metrics"))
                families = obs_metrics.parse_prometheus_text(body.decode())
                assert "repro_shard_workers_alive" in families
                assert "repro_shard_generation" in families
            finally:
                stop.set()
                thread.join(timeout=30)
            port = router.exporter.port
        assert not exporter_threads()
        assert_port_released(port)

    def test_worker_counters_fold_into_router_registry(
        self, small_community, fork_numpy
    ):
        # Batches wide enough that the online phase leaves the sparse
        # gather fast path and actually sweeps through the workers.
        with Router(TPA(s_iteration=6, t_iteration=12), small_community,
                    num_shards=2, reorder=None, supervise=False) as router:
            for _ in range(2):
                router.batch([QueryRequest(seed=s, k=5) for s in range(16)])
            families = obs_metrics.get_registry().families()
        steps = families["repro_worker_steps_total"]
        shards_seen = {key[0] for key in steps.children()}
        assert shards_seen == {"0", "1"}
        assert all(
            child.value > 0 for child in steps.children().values()
        )
        assert "repro_worker_step_seconds_total" in families

    def test_health_503_while_worker_down_then_recovers(
        self, small_community, fork_numpy
    ):
        with Router(TPA(s_iteration=6, t_iteration=12), small_community,
                    num_shards=2, reorder=None, supervise=False,
                    obs_port=0) as router:
            url = router.exporter.url("/health")
            status, _ = get(url)
            assert status == 200
            victim = router.engine.shards.workers()[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.perf_counter() + 10.0
            while victim.alive and time.perf_counter() < deadline:
                time.sleep(0.01)
            status, body = get(url)
            assert status == 503
            document = json.loads(body)
            assert document["ready"] is False
            # The next sweeping batch's in-sweep recovery (pipe EOF ->
            # bounded retry) respawns the worker.
            router.batch([QueryRequest(seed=s, k=5) for s in range(16)])
            status, _ = get(url)
            assert status == 200
            assert router.engine.shards.shard_stats()["respawns"] == 1

    def test_scrape_hammer_during_fault_injected_bench(
        self, small_community, fork_numpy, monkeypatch
    ):
        """Eight scrape threads against a router whose shard worker is
        killed mid-sweep: every response parses strictly, counters never
        move backwards, the respawn is visible, close leaves nothing."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "kill_mid_sweep@2:scope=shard1,gen=0")
        faults.reset_fault_plan()
        with Router(TPA(s_iteration=6, t_iteration=12), small_community,
                    num_shards=2, reorder=None, supervise=False,
                    obs_port=0) as router:
            metrics_url = router.exporter.url("/metrics")
            snapshot_url = router.exporter.url("/snapshot")
            stop = threading.Event()
            errors: list[str] = []

            def scraper(index: int) -> None:
                url = metrics_url if index % 2 == 0 else snapshot_url
                # Monotonicity is checked within this thread's own
                # ordered scrape sequence — responses from different
                # threads are sampled at uncomparable instants.
                floor: dict[tuple, float] = {}
                while not stop.is_set():
                    try:
                        status, body = get(url)
                        if status != 200:
                            errors.append(f"status {status} on {url}")
                            continue
                        if url is metrics_url:
                            families = obs_metrics.parse_prometheus_text(
                                body.decode()
                            )
                            for name, family in families.items():
                                if family["type"] != "counter":
                                    continue
                                for sample in family["samples"]:
                                    key = (name, sample[0],
                                           tuple(sorted(sample[1].items())))
                                    value = sample[2]
                                    if value < floor.get(key, 0.0):
                                        errors.append(
                                            f"{key} went "
                                            f"{floor[key]} -> {value}"
                                        )
                                    else:
                                        floor[key] = value
                        else:
                            document = json.loads(body)
                            if document["schema"] != obs_metrics.METRICS_SCHEMA:
                                errors.append("bad snapshot schema")
                    except Exception as error:  # noqa: BLE001
                        errors.append(repr(error))

            threads = [
                threading.Thread(target=scraper, args=(i,), daemon=True)
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            try:
                for round_index in range(6):
                    router.batch(
                        [QueryRequest(seed=s, k=5) for s in range(16)]
                    )
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert errors == []
            assert router.engine.shards.shard_stats()["respawns"] >= 1
            _, body = get(metrics_url)
            families = obs_metrics.parse_prometheus_text(body.decode())
            assert "repro_shard_respawns_total" in families
            port = router.exporter.port
        assert not exporter_threads()
        assert_port_released(port)


# -- the sampling profiler -----------------------------------------------------


def spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(500))


class TestProfiler:
    def test_disabled_by_default_and_arm_is_noop(self):
        assert obs_profile.profiling_enabled() is False
        assert obs_profile.arm() is False
        assert obs_profile.running() is False

    def test_samples_local_stacks(self):
        obs_profile.set_profiling(True)
        obs_profile.set_profile_hz(500)
        assert obs_profile.arm() is True
        spin(0.2)
        obs_profile.stop()
        assert obs_profile.running() is False
        collapsed = obs_profile.collapsed()
        assert collapsed
        assert obs_profile.pids() == [os.getpid()]
        snapshot = obs_profile.profile_snapshot()
        assert snapshot["schema"] == obs_profile.PROFILE_SCHEMA
        assert snapshot["samples"] == sum(
            count
            for line in collapsed.splitlines()
            for count in [int(line.rsplit(" ", 1)[1])]
        )
        # Every stack is rooted at this process's pid frame.
        assert all(
            line.startswith(f"pid:{os.getpid()};")
            for line in collapsed.splitlines()
        )

    def test_hz_env_and_clamp(self, monkeypatch):
        monkeypatch.setenv(obs_profile.PROFILE_HZ_ENV_VAR, "250")
        obs_profile.set_profile_hz(None)
        assert obs_profile.sample_hz() == 250.0
        with pytest.raises(ValueError):
            obs_profile.set_profile_hz(0)
        obs_profile.set_profile_hz(1e9)
        assert obs_profile.sample_hz() == 2000.0

    def test_ingest_merges_and_rejects_junk(self):
        obs_profile.ingest({"pid:1;a:b": 2, "pid:1;c:d": "3"})
        obs_profile.ingest({"pid:1;a:b": 1, "junk": -5, "bad": "x"})
        samples = obs_profile.folded_samples()
        assert samples["pid:1;a:b"] == 3
        assert samples["pid:1;c:d"] == 3
        assert "junk" not in samples and "bad" not in samples

    def test_profiled_shard_run_spans_multiple_pids(
        self, small_community, fork_numpy, monkeypatch
    ):
        monkeypatch.setenv(obs_profile.PROFILE_ENV_VAR, "1")
        monkeypatch.setenv(obs_profile.PROFILE_HZ_ENV_VAR, "500")
        obs_profile.set_profiling(None)
        with Router(TPA(s_iteration=8, t_iteration=16), small_community,
                    num_shards=2, reorder=None, supervise=False) as router:
            worker_pids = {
                worker.pid for worker in router.engine.shards.workers()
            }
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                router.batch([QueryRequest(seed=s, k=5) for s in range(32)])
                time.sleep(0.05)
                seen = set(obs_profile.pids())
                if seen & worker_pids and os.getpid() in seen:
                    break
        obs_profile.stop()
        pids = set(obs_profile.pids())
        assert os.getpid() in pids
        assert pids & worker_pids, "no worker samples shipped"
        assert len(pids) >= 2
        # Kernel-level attribution: some worker stack reaches the
        # kernels package (the sweep's spmm/spmv call sites).
        assert any(
            "repro.kernels" in stack or "repro.sharding.worker" in stack
            for stack in obs_profile.folded_samples()
        )


# -- structured logging --------------------------------------------------------


class TestLogging:
    def test_silent_by_default(self, capsys):
        logger = obs_logs.logging_setup(force=True)
        logger.warning("should vanish")
        obs_logs.get_logger("serving").warning("this too")
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""

    def test_json_lines_carry_component_and_pid(self):
        stream = io.StringIO()
        obs_logs.logging_setup("json", stream=stream, force=True)
        obs_logs.get_logger("sharding.worker").warning("w %d died", 3)
        line = stream.getvalue().strip()
        document = json.loads(line)
        assert document["component"] == "sharding.worker"
        assert document["message"] == "w 3 died"
        assert document["pid"] == os.getpid()
        assert document["level"] == "WARNING"
        assert "ts" in document

    def test_json_exception_rendering(self):
        stream = io.StringIO()
        obs_logs.logging_setup("json", stream=stream, force=True)
        try:
            raise ValueError("boom")
        except ValueError:
            obs_logs.get_logger("supervisor").warning(
                "probe failed", exc_info=True
            )
        document = json.loads(stream.getvalue().strip())
        assert "ValueError: boom" in document["exc"]

    def test_text_mode_and_env_resolution(self, monkeypatch):
        stream = io.StringIO()
        monkeypatch.setenv(obs_logs.LOG_ENV_VAR, "text")
        obs_logs.logging_setup(stream=stream, force=True)
        obs_logs.get_logger("resilience.reaper").warning("reaped 2")
        line = stream.getvalue()
        assert "repro.resilience.reaper" in line
        assert "reaped 2" in line

    def test_supervisor_failures_route_through_logger(self, monkeypatch):
        from repro.resilience.supervisor import Supervisor

        stream = io.StringIO()
        obs_logs.logging_setup("json", stream=stream, force=True)

        def probe():
            raise RuntimeError("probe exploded")

        supervisor = Supervisor(probe, lambda identity: None,
                                interval_ms=10.0)
        try:
            deadline = time.perf_counter() + 5.0
            while (
                "probe exploded" not in stream.getvalue()
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
        finally:
            supervisor.close()
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().splitlines()]
        assert any(
            entry["component"] == "supervisor"
            and "probe" in entry["message"]
            for entry in lines
        )
