"""Tests for the experiment harness: config, reporting, registry, drivers.

Driver tests run at tiny scale — they verify the plumbing and the
qualitative shapes, not benchmark-quality numbers.
"""

import pytest

from repro.exceptions import ParameterError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import ExperimentResult, format_cell


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(scale=0.05, num_seeds=2, hubppr_seeds=1)


class TestConfig:
    def test_defaults_cover_all_datasets(self):
        assert len(ExperimentConfig().datasets) == 7

    def test_quick_and_full_presets(self):
        assert ExperimentConfig.quick().num_seeds < ExperimentConfig.full().num_seeds
        assert ExperimentConfig.full().num_seeds == 30

    def test_with_datasets(self):
        config = ExperimentConfig().with_datasets("slashdot")
        assert config.datasets == ("slashdot",)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ParameterError):
            ExperimentConfig(datasets=("orkut",))

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            ExperimentConfig(scale=0)

    def test_invalid_seeds(self):
        with pytest.raises(ParameterError):
            ExperimentConfig(num_seeds=0)


class TestReporting:
    def test_format_cell_variants(self):
        assert format_cell(None) == "-"
        assert format_cell(float("nan")) == "-"
        assert format_cell("OOM") == "OOM"
        assert format_cell(0.0) == "0"
        assert format_cell(0.123456) == "0.1235"
        assert format_cell(1e-9) == "1.000e-09"
        assert format_cell(123456.0) == "1.235e+05"
        assert format_cell(7) == "7"

    def test_text_rendering(self):
        result = ExperimentResult("x", "title", ["a", "b"])
        result.add_row(1, 2.5)
        result.add_note("footnote")
        text = result.to_text()
        assert "title" in text
        assert "footnote" in text
        assert "2.5" in text

    def test_markdown_rendering(self):
        result = ExperimentResult("x", "title", ["a"])
        result.add_row("v")
        md = result.to_markdown()
        assert "| a |" in md
        assert "| v |" in md

    def test_csv_rendering_escapes(self):
        result = ExperimentResult("x", "t", ["a,b", "c"])
        result.add_row('has "quote"', "plain")
        csv = result.to_csv()
        assert '"a,b"' in csv
        assert '""quote""' in csv


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "table2", "table3", "fig1", "fig3", "fig4",
            "fig6", "fig7", "fig8", "fig9", "fig10", "ablation", "scaling",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ParameterError):
            run_experiment("fig99")


class TestDrivers:
    def test_table2(self, tiny_config):
        results = run_experiment("table2", tiny_config)
        assert len(results) == 1
        assert len(results[0].rows) == 7

    def test_table3_errors_below_bounds(self, tiny_config):
        results = run_experiment("table3", tiny_config)
        for row in results[0].rows:
            na_bound, na_error = row[1], row[2]
            sa_bound, sa_error = row[4], row[5]
            tpa_bound, tpa_error = row[7], row[8]
            assert na_error <= na_bound
            assert sa_error <= sa_bound
            assert tpa_error <= tpa_bound

    def test_fig4_shapes(self, tiny_config):
        nnz_table, ci_table = run_experiment("fig4", tiny_config)
        first_nnz = nnz_table.rows[0][1]
        last_nnz = nnz_table.rows[-1][1]
        assert last_nnz > first_nnz
        first_ci = ci_table.rows[0][1]
        last_ci = ci_table.rows[-1][1]
        assert last_ci < first_ci

    def test_fig6_real_below_random(self, tiny_config):
        config = tiny_config
        results = run_experiment("fig6", config)
        rows = results[0].rows
        # At tiny scale individual datasets may wobble; require the
        # majority shape.
        wins = sum(1 for row in rows if row[1] < row[2])
        assert wins >= len(rows) - 1

    def test_fig8_error_decreases_with_s(self, tiny_config):
        results = run_experiment("fig8", tiny_config)
        for table in results:
            errors = [row[2] for row in table.rows]
            assert errors[0] > errors[-1]

    def test_fig9_sa_decreases_na_increases(self, tiny_config):
        results = run_experiment("fig9", tiny_config)
        for table in results:
            na = [row[2] for row in table.rows]
            sa = [row[3] for row in table.rows]
            assert na[0] < na[-1]
            assert sa[0] > sa[-1]

    def test_fig10_tpa_smaller_and_faster(self, tiny_config):
        size_table, prep_table, online_table = run_experiment(
            "fig10", tiny_config.with_datasets("slashdot")
        )
        # ratio column like "12x"
        ratio = float(size_table.rows[0][3].rstrip("x"))
        assert ratio > 1.0


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out

    def test_no_arguments_is_error(self):
        from repro.experiments.__main__ import main

        assert main([]) == 2

    def test_run_one(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        md_path = tmp_path / "out.md"
        code = main(
            [
                "table2",
                "--scale", "0.05",
                "--seeds", "2",
                "--markdown", str(md_path),
            ]
        )
        assert code == 0
        assert "Dataset statistics" in capsys.readouterr().out
        assert md_path.exists()
