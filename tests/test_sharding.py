"""Tests for the sharded multi-process serving subsystem (repro.sharding).

The load-bearing guarantee mirrors the serving suite's: sharding must
never change scores or rankings.  Router/ShardedEngine results are
checked **bitwise** against a serial ``Engine.batch`` over the same
requests, on every installed kernel backend, including under the
SlashBurn reordering.  The rest covers the moving parts: plan packing,
the shared-memory store lifecycle (no ``/dev/shm`` leaks), worker
fault forwarding, the DiskGraph substrate, and the Router's
Server-compatible front end.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro import kernels
from repro.core.cpi import CPIMethod
from repro.core.tpa import TPA
from repro.resilience.reaper import reap_orphan_segments
from repro.engine import Engine, QueryRequest
from repro.exceptions import ParameterError
from repro.graph.diskgraph import DiskGraph
from repro.graph.partition import partition_graph, partition_order
from repro.graph.slashburn import slashburn
from repro.serving import REPORT_SCHEMA, bench_report, latency_histogram
from repro.serving.loadgen import run_closed_loop
from repro.sharding import (
    Router,
    ShardPlan,
    ShardedOperator,
    ShardStore,
    partition_reordering,
)


@pytest.fixture(params=kernels.available_backends())
def each_backend(request):
    """Run the test once per installed kernel backend."""
    previous = kernels.get_backend()
    kernels.set_backend(request.param)
    yield request.param
    kernels.set_backend(previous)


@pytest.fixture(scope="module")
def served_method(small_community):
    method = TPA(s_iteration=4, t_iteration=8)
    method.preprocess(small_community)
    return method


def mixed_requests(n: int) -> list[QueryRequest]:
    """Duplicate seeds, full-vector and top-k requests interleaved,
    varying exclusion flags — the serving suite's messy mix."""
    requests = []
    for index in range(60):
        seed = (index * 7) % (n // 4)
        if index % 5 == 0:
            requests.append(QueryRequest(seed=seed))
        elif index % 5 == 1:
            requests.append(QueryRequest(seed=seed, k=5, exclude_seed=False))
        elif index % 5 == 2:
            requests.append(
                QueryRequest(seed=seed, k=12, exclude_neighbors=True)
            )
        else:
            requests.append(QueryRequest(seed=seed, k=8))
    return requests


def assert_results_equivalent(reference, results):
    """Bitwise equality of everything but the accounting fields."""
    assert len(reference) == len(results)
    for expected, actual in zip(reference, results):
        assert expected.seed == actual.seed
        assert expected.method == actual.method
        if expected.scores is not None:
            np.testing.assert_array_equal(expected.scores, actual.scores)
            assert actual.top_nodes is None
        else:
            np.testing.assert_array_equal(
                expected.top_nodes, actual.top_nodes
            )
            np.testing.assert_array_equal(
                expected.top_scores, actual.top_scores
            )


def assert_no_segments(names) -> None:
    """No ``/dev/shm`` entry (nor attachable segment) remains."""
    for name in names:
        assert not os.path.exists("/dev/shm/" + name.lstrip("/")), name


class TestShardPlan:
    def test_uniform_covers_rows(self):
        plan = ShardPlan.uniform(100, 3)
        assert plan.num_shards == 3
        assert plan.num_rows == 100
        sizes = np.diff(plan.boundaries)
        assert sizes.sum() == 100
        assert sizes.min() >= 100 // 3 - 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            ShardPlan.uniform(10, 0)
        with pytest.raises(ParameterError):
            ShardPlan.uniform(3, 5)
        with pytest.raises(ParameterError):
            ShardPlan(boundaries=np.asarray([0, 5, 3, 10]))
        with pytest.raises(ParameterError):
            ShardPlan(boundaries=np.asarray([1, 10]))

    def test_hub_band_pinned_to_shard_zero(self, small_community):
        ordering = slashburn(small_community)
        plan = ShardPlan.from_slashburn(ordering, 4)
        assert plan.num_shards == 4
        assert plan.num_hubs == ordering.num_hubs
        begin, end = plan.shard_rows(0)
        assert begin == 0 and end >= ordering.num_hubs

    def test_spoke_cuts_on_block_frontiers(self, small_community):
        ordering = slashburn(small_community)
        plan = ShardPlan.from_slashburn(ordering, 3)
        candidates = set(ordering.block_boundaries().tolist())
        interior = plan.boundaries[1:-1]
        # Every interior cut beyond the hub band sits on a block
        # frontier when one was near enough to the even split point.
        for cut in interior.tolist():
            if cut in candidates:
                break
        else:  # pragma: no cover - diagnostic
            pytest.fail(f"no cut on a frontier: {interior} vs {candidates}")

    def test_partition_aligned_cuts(self, small_community):
        labels = partition_graph(small_community, 8, seed=3)
        _, starts = partition_order(labels)
        plan = ShardPlan.from_block_starts(
            small_community.num_nodes, 4, starts
        )
        assert plan.num_shards == 4
        frontier = set(starts.tolist())
        assert any(cut in frontier for cut in plan.boundaries[1:-1].tolist())

    def test_row_tiling_compatible(self, small_community):
        ordering = slashburn(small_community)
        plan = ShardPlan.from_slashburn(ordering, 3)
        tiling = plan.row_tiling(tile_height=32)
        shard_cuts = set(plan.boundaries.tolist())
        tile_cuts = set(tiling.boundaries.tolist())
        assert shard_cuts <= tile_cuts  # tiles never straddle shards
        assert tiling.num_rows == plan.num_rows

    def test_explicit_plan_num_shards_conflict(self, served_method):
        engine = Engine(served_method)
        plan = ShardPlan.uniform(served_method.graph.num_nodes, 3)
        with pytest.raises(ParameterError):
            engine.shard(num_shards=2, plan=plan)


class TestShardStore:
    def test_round_trip_and_cleanup(self, small_community):
        plan = ShardPlan.uniform(small_community.num_nodes, 3)
        store = ShardStore.build(small_community, plan, panel_cols=8)
        names = store.segment_names
        operator = small_community.transition_transpose
        total_nnz = sum(spec.nnz for spec in store.specs)
        assert total_nnz == operator.nnz
        for spec in store.specs:
            assert spec.row_end - spec.row_begin > 0
        store.close()
        assert_no_segments(names)
        store.close()  # idempotent

    def test_rejects_mismatched_plan(self, small_community):
        plan = ShardPlan.uniform(small_community.num_nodes - 1, 2)
        with pytest.raises(ParameterError):
            ShardStore.build(small_community, plan)


class TestShardedOperatorEquivalence:
    def test_propagate_bitwise_matches_graph(
        self, small_community, each_backend
    ):
        plan = ShardPlan.uniform(small_community.num_nodes, 3)
        rng = np.random.default_rng(7)
        with ShardedOperator(small_community, plan) as sharded:
            x = rng.random((small_community.num_nodes, 5))
            np.testing.assert_array_equal(
                small_community.propagate(x), sharded.propagate(x)
            )
            np.testing.assert_array_equal(
                small_community.propagate_decayed(x, 0.85),
                sharded.propagate_decayed(x, 0.85),
            )
            vec = rng.random(small_community.num_nodes)
            np.testing.assert_array_equal(
                small_community.propagate_decayed(vec, 0.85),
                sharded.propagate_decayed(vec, 0.85),
            )

    def test_wide_operand_chunks_bitwise(self, small_community):
        plan = ShardPlan.uniform(small_community.num_nodes, 2)
        rng = np.random.default_rng(8)
        with ShardedOperator(
            small_community, plan, panel_cols=4
        ) as sharded:
            x = rng.random((small_community.num_nodes, 11))
            np.testing.assert_array_equal(
                small_community.propagate_decayed(x, 0.85),
                sharded.propagate_decayed(x, 0.85),
            )

    def test_dangling_uniform_correction(self):
        from repro.graph.graph import Graph

        graph = Graph(
            6, [0, 1, 2, 3], [1, 2, 3, 0], dangling="uniform"
        )
        plan = ShardPlan.uniform(6, 2)
        x = np.random.default_rng(9).random((6, 3))
        with ShardedOperator(graph, plan) as sharded:
            np.testing.assert_array_equal(
                graph.propagate_decayed(x, 0.85),
                sharded.propagate_decayed(x, 0.85),
            )

    def test_delegates_structure_to_source(self, small_community):
        plan = ShardPlan.uniform(small_community.num_nodes, 2)
        with ShardedOperator(small_community, plan) as sharded:
            assert sharded.num_edges == small_community.num_edges
            np.testing.assert_array_equal(
                sharded.out_neighbors(3), small_community.out_neighbors(3)
            )
            assert sharded.transition is small_community.transition

    def test_closed_operator_rejects_sweeps(self, small_community):
        plan = ShardPlan.uniform(small_community.num_nodes, 2)
        sharded = ShardedOperator(small_community, plan)
        sharded.close()
        with pytest.raises(RuntimeError):
            sharded.propagate_decayed(
                np.zeros((small_community.num_nodes, 1)), 0.85
            )


class TestShardedEngine:
    def test_batch_bitwise_matches_serial(
        self, small_community, each_backend
    ):
        requests = mixed_requests(small_community.num_nodes)
        serial = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        reference = serial.batch(requests)
        engine = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        with engine.shard(num_shards=3) as sharded:
            assert_results_equivalent(reference, sharded.batch(requests))
            names = sharded.shards._store.segment_names
        assert_no_segments(names)

    def test_batch_bitwise_under_slashburn_reorder(
        self, small_community, each_backend
    ):
        requests = mixed_requests(small_community.num_nodes)
        serial = Engine(
            TPA(s_iteration=4, t_iteration=8), small_community,
            reorder="slashburn",
        )
        reference = serial.batch(requests)
        engine = Engine(
            TPA(s_iteration=4, t_iteration=8), small_community,
            reorder="slashburn",
        )
        with engine.shard(num_shards=3) as sharded:
            # The plan must have been cut on the reordering.
            assert sharded.shards.plan.num_hubs == engine.reordering.num_hubs
            assert_results_equivalent(reference, sharded.batch(requests))

    def test_serve_bitwise_matches_serial(self, served_method):
        seeds = np.arange(40) % 50
        serial = Engine(served_method)
        reference = serial.serve(seeds, k=10)
        engine = Engine(served_method)
        with engine.shard(num_shards=2) as sharded:
            np.testing.assert_array_equal(
                reference, sharded.serve(seeds, k=10)
            )

    def test_shares_preprocessed_state(self, served_method):
        engine = Engine(served_method)
        with engine.shard(num_shards=2) as sharded:
            assert sharded.method is not served_method
            assert sharded.method._stranger is served_method._stranger
            assert sharded.method.graph is sharded.shards
            assert sharded.graph is served_method.graph
            stats = sharded.stats()
            assert stats["shards"]["num_shards"] == 2
            assert stats["shards"]["workers_alive"] == 2

    def test_float32_policy_bitwise(self, small_community):
        requests = [QueryRequest(seed=s, k=8) for s in range(30)]
        previous = kernels.set_compute_dtype("float32")
        try:
            serial = Engine(
                TPA(s_iteration=4, t_iteration=8), small_community
            )
            reference = serial.batch(requests)
            engine = Engine(
                TPA(s_iteration=4, t_iteration=8), small_community
            )
            with engine.shard(num_shards=2) as sharded:
                assert_results_equivalent(reference, sharded.batch(requests))
        finally:
            kernels.set_compute_dtype(previous)

    def test_spawn_start_method(self, served_method):
        engine = Engine(served_method)
        serial = Engine(served_method)
        requests = [QueryRequest(seed=s, k=6) for s in range(12)]
        reference = serial.batch(requests)
        with engine.shard(num_shards=2, start_method="spawn") as sharded:
            assert_results_equivalent(reference, sharded.batch(requests))

    def test_worker_error_is_forwarded(self, small_community):
        plan = ShardPlan.uniform(small_community.num_nodes, 2)
        # supervise=False: a heartbeat ping racing on the pipe would
        # satisfy wait_ok before the error reply is read.
        with ShardedOperator(
            small_community, plan, supervise=False
        ) as sharded:
            # An operand of the wrong width for the panels is caught
            # router-side; simulate a worker-side failure instead by
            # sending a malformed command through the handle.  The
            # command carries a proper sequence number so the error
            # reply is not discarded as stale.
            worker = sharded.workers()[0]
            worker._send(("bogus", worker._next_seq()))
            with pytest.raises(RuntimeError, match="bogus"):
                worker.wait_ok(30.0)
            # The worker loop survives the bad command.
            worker.ping(30.0)


class TestDiskGraphSubstrate:
    """Satellite: Engine.replicate() and Engine.shard() over DiskGraph."""

    @pytest.fixture(scope="class")
    def disk_graph(self, tmp_path_factory, small_community):
        directory = tmp_path_factory.mktemp("shard_disk")
        return DiskGraph.build(small_community, directory, rows_per_stripe=64)

    def test_disk_propagate_bitwise_matches_memory(
        self, small_community, disk_graph
    ):
        """The satellite-1 rewrite: stripes through kernels.spmv/spmm,
        decay pre-scaled — disk and memory substrates agree bitwise."""
        rng = np.random.default_rng(5)
        x = rng.random((small_community.num_nodes, 4))
        np.testing.assert_array_equal(
            small_community.propagate_decayed(x, 0.85),
            disk_graph.propagate_decayed(x, 0.85),
        )
        vec = rng.random(small_community.num_nodes)
        np.testing.assert_array_equal(
            small_community.propagate(vec).astype(np.float64),
            disk_graph.propagate(vec),
        )

    def test_disk_propagate_reuses_workspace(self, disk_graph):
        x = np.random.default_rng(6).random(disk_graph.num_nodes)
        first = disk_graph.propagate(x)
        second = disk_graph.propagate(first)  # feeding the buffer back
        third = disk_graph.propagate(second)
        assert first is third  # the pair alternates
        assert disk_graph.resident_bytes() > 0

    def test_replicate_over_disk_substrate(self, disk_graph):
        method = TPA(s_iteration=4, t_iteration=8)
        method.preprocess(disk_graph)
        engine = Engine(method)
        replica = engine.replicate()
        assert replica.method is not method
        assert replica.method._stranger is method._stranger
        assert replica.method.graph is disk_graph
        result = replica.query(3, k=8)
        reference = engine.query(3, k=8)
        np.testing.assert_array_equal(reference.top_nodes, result.top_nodes)

    def test_shard_over_disk_substrate(self, disk_graph, each_backend):
        method = TPA(s_iteration=4, t_iteration=8)
        method.preprocess(disk_graph)
        serial = Engine(method)
        requests = [QueryRequest(seed=s % 40, k=8) for s in range(25)]
        reference = serial.batch(requests)
        engine = Engine(method)
        with engine.shard(num_shards=3) as sharded:
            # Shared read-only stripes: shard nnz covers the operator.
            stats = sharded.shards.shard_stats()
            assert sum(stats["shard_nnz"]) > 0
            assert_results_equivalent(reference, sharded.batch(requests))
            names = sharded.shards._store.segment_names
        assert_no_segments(names)


class TestRouter:
    def test_batch_bitwise_matches_serial(
        self, small_community, each_backend
    ):
        requests = mixed_requests(small_community.num_nodes)
        serial = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        reference = serial.batch(requests)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=3, max_batch=16, max_wait_ms=1.0,
        ) as router:
            assert_results_equivalent(reference, router.batch(requests))
            names = router.engine.shards._store.segment_names
        assert_no_segments(names)

    def test_bitwise_under_slashburn_reorder(self, small_community):
        requests = mixed_requests(small_community.num_nodes)
        serial = Engine(
            TPA(s_iteration=4, t_iteration=8), small_community,
            reorder="slashburn",
        )
        reference = serial.batch(requests)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, reorder="slashburn",
        ) as router:
            assert router.plan.num_hubs > 0
            assert_results_equivalent(reference, router.batch(requests))

    def test_partition_reorder_cuts_on_communities(self, small_community):
        requests = [QueryRequest(seed=s, k=8) for s in range(20)]
        # The same ordering the Router derives internally (4 shards ->
        # 4 partitions, same explicit seed), so the serial reference
        # serves in the identical node ordering.
        ordering = partition_reordering(small_community, 4, seed=0)
        serial = Engine(
            TPA(s_iteration=4, t_iteration=8), small_community,
            reorder=ordering,
        )
        reference = serial.batch(requests)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=4, reorder="partition", partition_seed=0,
        ) as router:
            frontier = set(ordering.block_starts.tolist())
            interior = router.plan.boundaries[1:-1].tolist()
            assert any(cut in frontier for cut in interior)
            assert_results_equivalent(reference, router.batch(requests))

    def test_concurrent_submissions_match_serial(self, small_community):
        from concurrent.futures import wait

        requests = mixed_requests(small_community.num_nodes)
        serial = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        reference = serial.batch(requests)
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, max_batch=8, max_wait_ms=0.5,
        ) as router:
            futures = [router.submit(request) for request in requests]
            wait(futures, timeout=120)
            results = [future.result(1) for future in futures]
        assert_results_equivalent(reference, results)

    def test_shared_cache_hits(self, small_community):
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, cache_size=64,
        ) as router:
            first = router.query(5, k=8)
            second = router.query(5, k=8)
            np.testing.assert_array_equal(first.top_nodes, second.top_nodes)
            assert router.cache.stats()["hits"] >= 1

    def test_submit_validates_before_enqueue(self, small_community):
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community, num_shards=2
        ) as router:
            with pytest.raises(ParameterError):
                router.submit(QueryRequest(seed=0, k=0))
            with pytest.raises(ValueError):
                router.submit(QueryRequest(seed=10**9, k=5))

    def test_close_is_idempotent_and_final(self, small_community):
        router = Router(
            TPA(s_iteration=4, t_iteration=8), small_community, num_shards=2
        )
        names = router.engine.shards._store.segment_names
        result = router.query(0, k=5)
        assert result.top_nodes.size == 5
        router.close()
        router.close()
        assert_no_segments(names)
        with pytest.raises(RuntimeError):
            router.submit(QueryRequest(seed=0, k=5))

    def test_stats_shape(self, small_community):
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community,
            num_shards=2, cache_size=16,
        ) as router:
            router.batch([QueryRequest(seed=s, k=5) for s in range(10)])
            stats = router.stats()
        assert stats["completed"] == 10
        assert stats["queries_served"] == 10
        assert stats["shards"]["num_shards"] == 2
        assert stats["shards"]["steps"] > 0
        assert "cache" in stats

    def test_closed_loop_load_generator(self, small_community):
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community, num_shards=2
        ) as router:
            report = run_closed_loop(
                router,
                np.arange(32),
                k=5,
                clients=2,
                requests_per_client=10,
            )
        assert report.requests == 20
        assert report.errors == 0


class TestCrashRecovery:
    """Satellite: a SIGKILLed shard worker must not change results.

    The kill lands between two batches, so the next sweep (or the
    supervisor heartbeat, whichever gets there first) finds the corpse,
    respawns the worker against the live store, and the Router's
    answers stay bitwise identical to a serial ``Engine.batch`` — with
    zero ``/dev/shm`` orphans afterwards.
    """

    def test_sigkilled_worker_respawns_bitwise(self, small_community):
        # CPI drives a real multi-iteration sweep through the shard
        # workers on every batch (TPA's online phase answers graphs this
        # small from the in-memory CSR without touching the operator).
        # Two disjoint request sets: a repeat of the first would be
        # answered by the engine's score cache, sweeping nothing.
        before = [QueryRequest(seed=s, k=8) for s in range(16)]
        after = [QueryRequest(seed=s, k=8) for s in range(16, 32)]
        serial = Engine(CPIMethod(), small_community)
        with Router(
            CPIMethod(), small_community, num_shards=2,
            max_batch=16, heartbeat_ms=50,
        ) as router:
            assert_results_equivalent(
                serial.batch(before), router.batch(before, timeout=120)
            )
            victim = router.engine.shards.workers()[1]
            os.kill(victim.pid, signal.SIGKILL)
            assert_results_equivalent(
                serial.batch(after), router.batch(after, timeout=120)
            )
            stats = router.stats()
            assert stats["respawns"] >= 1
            assert stats["failures"] == 0
            assert stats["shards"]["generations"][1] >= 1
            names = router.engine.shards._store.segment_names
        assert_no_segments(names)
        assert reap_orphan_segments() == []


class TestSharedReportSchema:
    """Satellite: serve-bench and shard-bench share one versioned schema."""

    def test_bench_report_document(self, small_community):
        with Router(
            TPA(s_iteration=4, t_iteration=8), small_community, num_shards=2
        ) as router:
            report = run_closed_loop(
                router, np.arange(16), k=5, clients=2, requests_per_client=5
            )
        document = bench_report(
            report, kind="shard-bench", config={"shards": 2}
        )
        assert document["schema"] == REPORT_SCHEMA
        assert document["kind"] == "shard-bench"
        assert document["config"] == {"shards": 2}
        assert document["requests"] == report.requests
        import json

        json.dumps(document)  # the document must be serializable

    def test_latency_histogram_renders(self):
        text = latency_histogram([1.0, 2.0, 100.0])
        assert "latency histogram (ms)" in text
        assert latency_histogram([]).endswith("(no completed requests)")


class TestCacheTokenShardComponent:
    def test_default_token_names_no_shard(self):
        assert ":shard-none:" in kernels.cache_token()

    def test_annotation_appears_in_token(self):
        previous = kernels.set_shard_annotation("1/4")
        try:
            assert ":shard-1/4:" in kernels.cache_token()
        finally:
            kernels.set_shard_annotation(previous)
        assert ":shard-none:" in kernels.cache_token()


class TestReorderInstanceParameter:
    def test_engine_accepts_locality_reordering(self, small_community):
        ordering = partition_reordering(small_community, 4, seed=1)
        engine = Engine(
            TPA(s_iteration=4, t_iteration=8), small_community,
            reorder=ordering,
        )
        plain = Engine(TPA(s_iteration=4, t_iteration=8), small_community)
        result = engine.query(3, k=8)
        reference = plain.query(3, k=8)
        # A permutation changes accumulation order, so only near-equality
        # holds across *different* orderings.
        np.testing.assert_allclose(
            np.sort(result.top_scores), np.sort(reference.top_scores),
            atol=1e-9,
        )

    def test_engine_rejects_mismatched_reordering(
        self, small_community, medium_community
    ):
        ordering = partition_reordering(medium_community, 4, seed=1)
        with pytest.raises(ParameterError):
            Engine(
                TPA(s_iteration=4, t_iteration=8), small_community,
                reorder=ordering,
            )
