"""Dynamic graphs: delta overlay, compaction, and epoch-aware caches.

Covers the ``repro.dynamic`` contracts:

* overlay products agree with a from-scratch rebuild within the
  documented ``OVERLAY_TOLERANCE`` (1e-12 per entry);
* ``compact()`` makes results **bitwise identical** to a fresh
  :class:`~repro.graph.graph.Graph` built from the same edges, on every
  installed kernel backend;
* every mutation bumps the graph epoch component of
  ``kernels.cache_token``, so neither the shared
  :class:`~repro.serving.ScoreCache` nor the Engine LRU can ever serve a
  pre-update vector — including under an 8-thread query/mutate hammer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Engine, Graph, community_graph, cpi, create_method, kernels
from repro.dynamic import DeltaOverlay, DynamicGraph, OVERLAY_TOLERANCE
from repro.exceptions import (
    DanglingNodeError,
    GraphFormatError,
    ParameterError,
)
from repro.serving.cache import ScoreCache

BACKENDS = kernels.available_backends()


@pytest.fixture
def backend_restore():
    before = kernels.get_backend()
    yield
    kernels.set_backend(before)


def _edge_set(graph: Graph) -> set[tuple[int, int]]:
    src, dst = graph.edges()
    return set(zip(src.tolist(), dst.tolist()))


def _fresh(n: int, pairs: set[tuple[int, int]], policy: str) -> Graph:
    arr = np.array(sorted(pairs), dtype=np.int64).reshape(-1, 2)
    return Graph(n, arr[:, 0], arr[:, 1], dangling=policy)


@pytest.fixture(scope="module")
def base():
    return community_graph(300, avg_degree=6, num_communities=6, seed=3)


class TestOverlaySemantics:
    def test_add_remove_counts_and_noops(self, base):
        dyn = DynamicGraph(base)
        pairs = _edge_set(base)
        existing = next(iter(pairs))
        report = dyn.add_edges([existing])  # duplicate: no-op
        assert report == 0
        assert not dyn.dirty
        assert dyn.add_edges([(1, 1)]) == 0  # self-loop: dropped
        assert dyn.remove_edges([(0, 299)]) in (0, 1)

    def test_overlay_counters_track_edges(self, base):
        dyn = DynamicGraph(base)
        pairs = _edge_set(base)
        new = [(5, 200), (5, 201), (17, 3)]
        new = [pair for pair in new if pair not in pairs]
        added = dyn.add_edges(new)
        assert added == len(new)
        assert dyn.num_edges == base.num_edges + added
        assert dyn.dirty
        victim = next(iter(pairs))
        assert dyn.remove_edges([victim]) == 1
        assert dyn.num_edges == base.num_edges + added - 1

    def test_out_degree_and_neighbors_overlay_aware(self, base):
        dyn = DynamicGraph(base)
        degree_before = int(dyn.out_degree[5])
        neighbors = set(base.out_neighbors(5).tolist())
        target = next(t for t in range(300) if t not in neighbors and t != 5)
        dyn.add_edges([(5, target)])
        assert int(dyn.out_degree[5]) == degree_before + 1
        assert target in dyn.out_neighbors(5).tolist()

    def test_endpoint_validation(self, base):
        dyn = DynamicGraph(base)
        with pytest.raises(GraphFormatError):
            dyn.add_edges([(0, 300)])
        with pytest.raises(GraphFormatError):
            dyn.add_edges([(-1, 0)])

    def test_selfloop_policy_rejected(self):
        graph = Graph(3, [0, 1, 2], [1, 2, 0], dangling="selfloop")
        with pytest.raises(ParameterError):
            DynamicGraph(graph)

    def test_error_policy_guards_emptied_rows(self):
        graph = Graph(3, [0, 1, 2], [1, 2, 0], dangling="error")
        dyn = DynamicGraph(graph)
        with pytest.raises(DanglingNodeError):
            dyn.remove_edges([(1, 2)])
        # The graph still answers queries after the rejected batch.
        cpi(dyn, seeds=0)

    def test_delta_overlay_dangling_tracking(self):
        graph = Graph(4, [0, 1, 2], [1, 2, 3], dangling="uniform")
        overlay = DeltaOverlay(graph)
        assert overlay.dangling_nodes().tolist() == [3]
        overlay.add(3, 0)
        assert overlay.dangling_nodes().tolist() == []
        overlay.remove(2, 3)
        assert overlay.dangling_nodes().tolist() == [2]


class TestOverlayAccuracy:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_overlay_product_within_tolerance(
        self, base, backend, backend_restore
    ):
        kernels.set_backend(backend)
        dyn = DynamicGraph(base)
        pairs = _edge_set(base)
        new = [(5, 200), (44, 7), (200, 5)]
        dyn.add_edges(new)
        victim = sorted(pairs)[10]
        dyn.remove_edges([victim])
        mirror = (pairs | set(new)) - {victim}
        fresh = _fresh(300, mirror, base.dangling_policy)
        rng = np.random.default_rng(0)
        x = rng.random((300, 4))
        got = dyn.propagate(x)
        want = fresh.propagate(x)
        # The only rounding is the surviving-edge 1/d_new - 1/d_old fold.
        assert np.abs(got - want).max() <= 50 * OVERLAY_TOLERANCE

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compact_is_bitwise_fresh_rebuild(
        self, base, backend, backend_restore
    ):
        kernels.set_backend(backend)
        dyn = DynamicGraph(base)
        pairs = _edge_set(base)
        new = [(5, 200), (44, 7), (200, 5), (299, 0)]
        dyn.add_edges(new)
        victim = sorted(pairs)[3]
        dyn.remove_edges([victim])
        dirty = dyn.compact()
        assert dirty.size > 0
        assert not dyn.dirty
        mirror = (pairs | set(new)) - {victim}
        fresh = _fresh(300, mirror, base.dangling_policy)
        adjacency = dyn.base_graph.adjacency
        want = fresh.adjacency
        assert np.array_equal(adjacency.indptr, want.indptr)
        assert np.array_equal(adjacency.indices, want.indices)
        rng = np.random.default_rng(1)
        x = rng.random((300, 3))
        assert np.array_equal(dyn.propagate(x), fresh.propagate(x))
        assert np.array_equal(
            dyn.propagate_decayed(x, 0.85), fresh.propagate_decayed(x, 0.85)
        )
        assert np.array_equal(
            cpi(dyn, seeds=5).scores, cpi(fresh, seeds=5).scores
        )

    def test_compact_noop_returns_empty(self, base):
        dyn = DynamicGraph(base)
        assert dyn.compact().size == 0
        assert dyn.base_epoch == 0

    def test_dirty_rows_since_tracks_history(self, base):
        dyn = DynamicGraph(base)
        dyn.add_edges([(5, 200)])
        dyn.compact()
        rows = dyn.dirty_rows_since(0)
        # Dirty rows live in the A^T layout: destinations of source 5's
        # rescaled row, including the inserted target.
        assert rows is not None and 200 in rows.tolist()
        dyn.add_edges([(17, 3)])
        dyn.compact()
        both = dyn.dirty_rows_since(0)
        assert set(rows.tolist()) <= set(both.tolist())
        assert dyn.dirty_rows_since(dyn.base_epoch).size == 0


class TestEpochTokens:
    def test_every_mutation_bumps_the_token(self, base):
        dyn = DynamicGraph(base)
        seen = [dyn.epoch_token()]
        dyn.add_edges([(5, 200)])
        seen.append(dyn.epoch_token())
        dyn.add_edges([(17, 3)])
        seen.append(dyn.epoch_token())
        dyn.compact()
        seen.append(dyn.epoch_token())
        dyn.remove_edges([(5, 200)])
        seen.append(dyn.epoch_token())
        dyn.compact()
        seen.append(dyn.epoch_token())
        assert len(set(seen)) == len(seen), seen

    def test_dirty_token_names_the_overlay_tier(self, base):
        dyn = DynamicGraph(base)
        dyn.add_edges([(5, 200)])
        assert "~overlay-1e-12" in dyn.epoch_token()
        dyn.compact()
        assert "~overlay" not in dyn.epoch_token()

    def test_cache_token_carries_the_epoch(self, base):
        dyn = DynamicGraph(base)
        static = kernels.cache_token()
        assert "graph-static" in static
        clean = kernels.cache_token(dyn)
        dyn.add_edges([(5, 200)])
        dirty = kernels.cache_token(dyn)
        dyn.compact()
        compacted = kernels.cache_token(dyn)
        assert len({static, clean, dirty, compacted}) == 4

    def test_score_cache_keys_on_token(self):
        cache = ScoreCache(4)
        vector = np.arange(3.0)
        cache.put(1, vector, token="epoch-a")
        assert cache.get(1, token="epoch-b") is None
        hit = cache.get(1, token="epoch-a")
        assert hit is not None and np.array_equal(hit, vector)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_warm_hint_returns_newest_any_token(self):
        cache = ScoreCache(4)
        old = np.zeros(3)
        new = np.ones(3)
        cache.put(1, old, token="epoch-a")
        cache.put(1, new, token="epoch-b")
        hint = cache.warm_hint(1)
        assert np.array_equal(hint, new)
        assert cache.warm_hint(2) is None
        # Neither a hit nor a miss was counted.
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0


class TestEngineCacheRepair:
    def test_mutation_invalidates_engine_cache(self, base):
        dyn = DynamicGraph(base)
        engine = Engine(create_method("cpi"), dyn, cache_size=8)
        first = engine.query(5)
        assert engine.query(5).cached
        dyn.add_edges([(5, 200)])
        repaired = engine.query(5)
        assert not repaired.cached
        assert not np.array_equal(first.scores, repaired.scores)
        dyn.compact()
        assert not engine.query(5).cached  # epoch moved again
        assert engine.query(5).cached

    def test_shared_cache_invalidated_across_replicas(self, base):
        dyn = DynamicGraph(base)
        engine = Engine(create_method("cpi"), dyn, cache_size=8)
        replica = engine.replicate()
        engine.query(5)
        assert replica.query(5).cached  # pooled hit pre-mutation
        dyn.add_edges([(5, 200)])
        assert not replica.query(5).cached

    def test_hammer_never_serves_pre_epoch_vectors(self, base):
        """8 query threads race a mutate/compact thread; afterwards any
        vector cached under the final epoch token must equal a cold
        from-scratch computation on the final graph, bit for bit."""
        dyn = DynamicGraph(base)
        pairs = _edge_set(base)
        cache = ScoreCache(64)
        root = Engine(
            create_method("cpi"), dyn, cache=cache, warm_start=False
        )
        seeds = list(range(8))
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer(engine, seed):
            try:
                while not stop.is_set():
                    engine.query(seed)
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        candidates = [
            (u, v)
            for u in range(8)
            for v in range(250, 262)
            if (u, v) not in pairs
        ]

        def mutate():
            try:
                for index, pair in enumerate(candidates[:24]):
                    dyn.add_edges([pair])
                    pairs.add(pair)
                    if index % 6 == 5:
                        dyn.compact()
                dyn.compact()
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(root.replicate(), seed))
            for seed in seeds
        ]
        mutator = threading.Thread(target=mutate)
        for thread in threads:
            thread.start()
        mutator.start()
        mutator.join()
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors

        assert not dyn.dirty
        final_token = kernels.cache_token(dyn)
        fresh = _fresh(300, pairs, base.dangling_policy)
        checked = 0
        for seed in seeds:
            cached = cache.get(seed, token=final_token)
            if cached is None:
                continue
            checked += 1
            assert np.array_equal(cached, cpi(fresh, seeds=seed).scores)
        # A post-hammer query must also land on the final epoch exactly.
        result = root.query(seeds[0])
        assert np.array_equal(
            result.scores, cpi(fresh, seeds=seeds[0]).scores
        )
        stats = cache.stats()
        assert stats["hits"] >= 0 and stats["misses"] >= checked


class TestPermutedView:
    def test_permuted_view_tracks_mutations(self, base):
        dyn = DynamicGraph(base)
        rng = np.random.default_rng(7)
        perm = rng.permutation(300)
        view = dyn.permute(perm)
        inverse = np.empty(300, dtype=np.int64)
        inverse[perm] = np.arange(300)
        x = rng.random(300)
        assert np.allclose(
            view.propagate(x)[inverse], dyn.propagate(x[inverse])
        )
        dyn.add_edges([(5, 200), (200, 5)])
        got = view.propagate(x)[inverse]
        want = dyn.propagate(x[inverse])
        assert np.abs(got - want).max() <= 50 * OVERLAY_TOLERANCE
        dyn.compact()
        # Cross-space comparison can only be allclose (permutation changes
        # the accumulation order); bitwise holds within the permuted space
        # against a fresh permuted rebuild of the compacted base.
        assert np.allclose(
            view.propagate(x)[inverse], dyn.propagate(x[inverse])
        )
        _, compacted = dyn.base_snapshot()
        fresh_view = compacted.permute(perm)
        assert np.array_equal(view.propagate(x), fresh_view.propagate(x))
        assert view.epoch_token() == dyn.epoch_token()
