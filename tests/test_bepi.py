"""Unit tests for the BePI exact baseline (the experiments' ground truth)."""

import numpy as np
import pytest

from repro.baselines.bepi import BePI
from repro.exceptions import MemoryBudgetExceeded
from repro.ranking.rwr import rwr_direct


class TestBePIExactness:
    def test_matches_direct_solve(self, medium_community):
        method = BePI()
        method.preprocess(medium_community)
        for seed in (0, 42, 1400):
            exact = rwr_direct(medium_community, seed)
            np.testing.assert_allclose(method.query(seed), exact, atol=1e-7)

    def test_exact_on_random_graph(self, random_gnm):
        method = BePI()
        method.preprocess(random_gnm)
        exact = rwr_direct(random_gnm, 3)
        np.testing.assert_allclose(method.query(3), exact, atol=1e-7)

    def test_exact_on_ring(self, tiny_ring):
        method = BePI()
        method.preprocess(tiny_ring)
        exact = rwr_direct(tiny_ring, 0)
        np.testing.assert_allclose(method.query(0), exact, atol=1e-9)

    def test_exact_on_star(self, tiny_star):
        method = BePI()
        method.preprocess(tiny_star)
        exact = rwr_direct(tiny_star, 0)
        np.testing.assert_allclose(method.query(0), exact, atol=1e-9)

    def test_scores_sum_to_one(self, medium_community):
        method = BePI()
        method.preprocess(medium_community)
        assert method.query(0).sum() == pytest.approx(1.0, abs=1e-7)


class TestBePIResources:
    def test_stores_sparse_factors_only(self, medium_community):
        """BePI must store far less than a dense n^2 inverse."""
        method = BePI()
        method.preprocess(medium_community)
        n = medium_community.num_nodes
        assert 0 < method.preprocessed_bytes() < n * n * 8 / 4

    def test_stores_more_than_tpa(self, medium_community):
        """Figure 10(a): BePI's factors dwarf TPA's single vector."""
        from repro.core.tpa import TPA

        bepi = BePI()
        bepi.preprocess(medium_community)
        tpa = TPA(s_iteration=5, t_iteration=10)
        tpa.preprocess(medium_community)
        assert bepi.preprocessed_bytes() > 5 * tpa.preprocessed_bytes()

    def test_memory_budget_enforced(self, medium_community):
        method = BePI(memory_budget_bytes=100)
        with pytest.raises(MemoryBudgetExceeded):
            method.preprocess(medium_community)
