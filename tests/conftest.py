"""Shared fixtures for the test suite.

Graphs are module-scoped where construction is expensive; tests never
mutate them (Graph is logically immutable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    community_graph,
    complete_graph,
    gnm_random_graph,
    ring_graph,
    star_graph,
)
from repro.graph.graph import Graph


@pytest.fixture(scope="session")
def small_community():
    """A 400-node community graph — the workhorse fixture."""
    return community_graph(400, avg_degree=8, num_communities=8, seed=11)


@pytest.fixture(scope="session")
def medium_community():
    """A 1500-node community graph for accuracy comparisons."""
    return community_graph(1500, avg_degree=10, num_communities=12, seed=12)


@pytest.fixture(scope="session")
def random_gnm():
    return gnm_random_graph(400, 3200, seed=13)


@pytest.fixture(scope="session")
def tiny_ring():
    return ring_graph(10)


@pytest.fixture(scope="session")
def tiny_star():
    return star_graph(9)


@pytest.fixture(scope="session")
def tiny_complete():
    return complete_graph(6)


@pytest.fixture
def line_graph():
    """0 -> 1 -> 2 -> 3 with a back-edge 3 -> 0 (no dangling)."""
    return Graph(4, [0, 1, 2, 3], [1, 2, 3, 0])


@pytest.fixture
def dangling_graph_selfloop():
    """Node 2 has no out-edges; self-loop policy."""
    return Graph(3, [0, 1], [1, 2], dangling="selfloop")


@pytest.fixture
def dangling_graph_uniform():
    """Node 2 has no out-edges; uniform teleport policy."""
    return Graph(3, [0, 1], [1, 2], dangling="uniform")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def numba_source_namespace():
    """The numba backend's kernels, exec'd as plain Python.

    Stripping the ``@njit`` decorators and aliasing ``prange`` to
    ``range`` turns the compiled kernels into their interpreted twins,
    so the loop logic (ring-buffer queues, heaps, accumulation order) is
    tested even in environments without Numba — the code CI's numpy-only
    leg would otherwise never execute.
    """
    import re
    from pathlib import Path

    path = (
        Path(__file__).parent.parent
        / "src" / "repro" / "kernels" / "_numba_backend.py"
    )
    source = path.read_text()
    source = source.replace("import numba\n", "")
    source = source.replace("from numba import njit, prange", "prange = range")
    source = source.replace(
        "num_threads = int(numba.get_num_threads())", "num_threads = 1"
    )
    source = re.sub(r"@njit\([^)]*\)\n", "", source)
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - our own source, test-only
    return namespace
