"""Unit tests for the RPPR baseline."""

import numpy as np
import pytest

from repro.baselines.rppr import RPPR
from repro.exceptions import ParameterError
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(medium_community):
    method = RPPR()
    method.preprocess(medium_community)
    return method


class TestRPPR:
    def test_online_only(self, prepared):
        assert prepared.preprocessed_bytes() == 0

    def test_high_recall(self, prepared, medium_community):
        exact = rwr_direct(medium_community, 4)
        approx = prepared.query(4)
        assert recall_at_k(exact, approx, 100) >= 0.9

    def test_reasonable_l1(self, prepared, medium_community):
        """The L1 error of greedy RPPR equals the rank parked on inactive
        vertices — bounded but not tiny at the paper's 1e-4 threshold."""
        exact = rwr_direct(medium_community, 4)
        approx = prepared.query(4)
        error = np.abs(exact - approx).sum()
        assert error < 0.25
        # The error is exactly the unpropagated mass (scores sum to 1 - loss).
        assert error == pytest.approx(1.0 - approx.sum(), abs=0.05)

    def test_active_set_tracked(self, prepared, medium_community):
        prepared.query(0)
        assert 0 < prepared.last_active_size <= medium_community.num_nodes

    def test_higher_threshold_smaller_active_set(self, medium_community):
        greedy = RPPR(expand_threshold=1e-5)
        greedy.preprocess(medium_community)
        greedy.query(0)
        lazy = RPPR(expand_threshold=1e-2)
        lazy.preprocess(medium_community)
        lazy.query(0)
        assert lazy.last_active_size <= greedy.last_active_size

    def test_lower_threshold_more_accurate(self, medium_community):
        exact = rwr_direct(medium_community, 6)
        errors = []
        for threshold in (1e-2, 1e-5):
            method = RPPR(expand_threshold=threshold)
            method.preprocess(medium_community)
            errors.append(np.abs(exact - method.query(6)).sum())
        assert errors[1] <= errors[0]

    def test_mass_bounded_by_one(self, prepared):
        scores = prepared.query(3)
        assert scores.sum() <= 1.0 + 1e-9
        assert (scores >= 0).all()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"expand_threshold": 0.0},
            {"c": 0.0},
            {"tol": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            RPPR(**kwargs)
