"""Package-level tests: public API surface, exceptions, version."""

import pytest

import repro
from repro.exceptions import (
    ConvergenceError,
    DanglingNodeError,
    GraphFormatError,
    MemoryBudgetExceeded,
    NotPreprocessedError,
    ParameterError,
    ReproError,
)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_entry_points_present(self):
        for name in ("TPA", "cpi", "Graph", "community_graph", "rwr_exact",
                     "BePI", "recall_at_k", "load_dataset"):
            assert name in repro.__all__

    def test_subpackage_all_resolve(self):
        import repro.baselines
        import repro.core
        import repro.graph
        import repro.metrics
        import repro.ranking

        for module in (repro.baselines, repro.core, repro.graph,
                       repro.metrics, repro.ranking):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestExceptions:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphFormatError,
            DanglingNodeError,
            NotPreprocessedError,
            MemoryBudgetExceeded,
            ConvergenceError,
            ParameterError,
        ],
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)

    def test_memory_budget_fields(self):
        error = MemoryBudgetExceeded("X", 100, 50)
        assert error.method == "X"
        assert error.required_bytes == 100
        assert error.budget_bytes == 50
        assert "exceeds" in str(error)

    def test_catch_all_library_errors(self):
        """A single except ReproError clause covers library failures."""
        from repro.graph.graph import Graph

        with pytest.raises(ReproError):
            Graph(0, [], [])


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core.cpi",
            "repro.core.tpa",
            "repro.core.bounds",
            "repro.graph.graph",
            "repro.graph.generators",
            "repro.graph.slashburn",
            "repro.graph.diskgraph",
            "repro.baselines.fora",
            "repro.baselines.bepi",
            "repro.metrics.accuracy",
            "repro.experiments",
        ],
    )
    def test_modules_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_public_methods_documented(self):
        from repro.core.tpa import TPA
        from repro.method import PPRMethod

        for cls in (TPA, PPRMethod):
            for attr_name in dir(cls):
                if attr_name.startswith("_"):
                    continue
                attr = getattr(cls, attr_name)
                if callable(attr):
                    assert attr.__doc__, f"{cls.__name__}.{attr_name}"
