"""Tests for the shared PPRMethod protocol across all implementations."""

import numpy as np
import pytest

from repro.baselines import BRPPR, BearApprox, BePI, Fora, HubPPR, NBLin
from repro.core.tpa import TPA
from repro.exceptions import NotPreprocessedError


def _fresh_methods():
    return [
        TPA(s_iteration=4, t_iteration=8),
        BRPPR(),
        NBLin(rank=20, seed=0),
        BearApprox(),
        Fora(seed=0),
        HubPPR(seed=0, max_walks=5_000, refine_top=30),
        BePI(),
    ]


@pytest.mark.parametrize("method", _fresh_methods(), ids=lambda m: m.name)
class TestProtocol:
    def test_query_requires_preprocess(self, method):
        with pytest.raises(NotPreprocessedError):
            method.query(0)

    def test_graph_property_requires_preprocess(self, method):
        with pytest.raises(NotPreprocessedError):
            _ = method.graph

    def test_is_preprocessed_flag(self, method, small_community):
        assert not method.is_preprocessed
        method.preprocess(small_community)
        assert method.is_preprocessed
        assert method.graph is small_community


class TestQueryContract:
    @pytest.fixture(scope="class")
    def prepared_methods(self, small_community):
        methods = _fresh_methods()
        for method in methods:
            method.preprocess(small_community)
        return methods

    def test_output_shape(self, prepared_methods, small_community):
        for method in prepared_methods:
            scores = method.query(0)
            assert scores.shape == (small_community.num_nodes,)

    def test_scores_non_negative(self, prepared_methods):
        """All methods except NB_LIN return non-negative scores; NB_LIN's
        low-rank truncation legitimately produces small negative entries."""
        for method in prepared_methods:
            scores = method.query(1)
            if method.name == "NB_LIN":
                assert scores.min() > -0.05
            else:
                assert (scores >= -1e-12).all(), method.name

    def test_seed_out_of_range(self, prepared_methods, small_community):
        for method in prepared_methods:
            with pytest.raises(ValueError):
                method.query(small_community.num_nodes)

    def test_preprocessed_bytes_non_negative(self, prepared_methods):
        for method in prepared_methods:
            assert method.preprocessed_bytes() >= 0

    def test_mass_roughly_conserved(self, prepared_methods):
        """Every estimator approximates a probability distribution.  NB_LIN
        loses the mass carried by the truncated singular directions — it is
        the paper's least accurate method — so its band is wider."""
        for method in prepared_methods:
            total = method.query(2).sum()
            if method.name == "NB_LIN":
                assert 0.2 < total < 1.3, f"NB_LIN total mass {total}"
            else:
                assert 0.7 < total < 1.3, f"{method.name} total mass {total}"

    def test_seed_in_top_ranks(self, prepared_methods):
        """The seed node itself must appear among its top-10 scores for
        every method (it holds at least mass c = 0.15 exactly)."""
        for method in prepared_methods:
            scores = method.query(3)
            top = np.argsort(-scores)[:10]
            assert 3 in top, method.name
