"""Integration tests: all methods against ground truth on shared graphs,
and cross-module consistency checks mirroring the paper's claims."""

import numpy as np
import pytest

from repro.baselines import BRPPR, BearApprox, BePI, Fora, HubPPR, NBLin
from repro.core.cpi import cpi
from repro.core.tpa import TPA
from repro.graph.datasets import load_dataset
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def analog():
    """A small analog of the paper's smallest dataset."""
    return load_dataset("slashdot", scale=0.25)


@pytest.fixture(scope="module")
def exact_scores(analog):
    rng = np.random.default_rng(7)
    seeds = rng.choice(analog.num_nodes, size=3, replace=False)
    return {int(s): rwr_direct(analog, int(s)) for s in seeds}


class TestAllMethodsEndToEnd:
    def test_accurate_methods_reach_high_recall(self, analog, exact_scores):
        """Figure 7's claim: all methods except NB-LIN track the exact
        top-k closely."""
        methods = [
            TPA(s_iteration=5, t_iteration=10),
            BRPPR(),
            BearApprox(),
            Fora(seed=0),
            BePI(),
        ]
        for method in methods:
            method.preprocess(analog)
            for seed, exact in exact_scores.items():
                approx = method.query(seed)
                recall = recall_at_k(exact, approx, 50)
                assert recall >= 0.8, f"{method.name} recall {recall}"

    def test_hubppr_topk(self, analog, exact_scores):
        method = HubPPR(seed=0, max_walks=30_000, refine_top=80)
        method.preprocess(analog)
        seed, exact = next(iter(exact_scores.items()))
        approx = method.query(seed)
        assert recall_at_k(exact, approx, 50) >= 0.8

    def test_nblin_runs_but_least_accurate(self, analog, exact_scores):
        nblin = NBLin(seed=0)
        nblin.preprocess(analog)
        tpa = TPA(s_iteration=5, t_iteration=10)
        tpa.preprocess(analog)
        seed, exact = next(iter(exact_scores.items()))
        recall_nblin = recall_at_k(exact, nblin.query(seed), 50)
        recall_tpa = recall_at_k(exact, tpa.query(seed), 50)
        assert recall_nblin <= recall_tpa + 0.05


class TestMemoryOrdering:
    def test_tpa_has_smallest_preprocessed_data(self, analog):
        """Figure 1(a)'s headline: TPA stores the least."""
        tpa = TPA(s_iteration=5, t_iteration=10)
        tpa.preprocess(analog)
        heavy = [
            BearApprox(),
            NBLin(seed=0),
            Fora(seed=0),
            HubPPR(seed=0, max_walks=10_000),
            BePI(),
        ]
        for method in heavy:
            method.preprocess(analog)
            assert method.preprocessed_bytes() > tpa.preprocessed_bytes(), method.name


class TestGroundTruthConsistency:
    def test_bepi_agrees_with_cpi(self, analog):
        """Two independent exact solvers must agree."""
        bepi = BePI()
        bepi.preprocess(analog)
        for seed in (1, 50):
            via_bepi = bepi.query(seed)
            via_cpi = cpi(analog, seed, tol=1e-13).scores
            np.testing.assert_allclose(via_bepi, via_cpi, atol=1e-7)

    def test_tpa_parts_reconstruct_query(self, analog):
        method = TPA(s_iteration=5, t_iteration=10)
        method.preprocess(analog)
        parts = method.query_parts(3)
        np.testing.assert_allclose(parts.scores, method.query(3))

    def test_exact_rwr_is_fixed_point(self, analog):
        """r = (1-c) A~^T r + c q — the defining equation of Section II-B."""
        c = 0.15
        seed = 11
        r = rwr_direct(analog, seed, c=c)
        q = np.zeros(analog.num_nodes)
        q[seed] = 1.0
        reconstructed = (1 - c) * analog.propagate(r) + c * q
        np.testing.assert_allclose(reconstructed, r, atol=1e-9)

    def test_pagerank_is_fixed_point(self, analog):
        from repro.ranking import pagerank

        c = 0.15
        p = pagerank(analog, tol=1e-13)
        reconstructed = (1 - c) * analog.propagate(p) + c / analog.num_nodes
        np.testing.assert_allclose(reconstructed, p, atol=1e-9)


class TestPaperClaimStrangerComplement:
    def test_total_error_below_sum_of_parts(self, analog):
        """Section IV-C: the two approximations compensate — the total TPA
        error is below the sum of the part errors."""
        from repro.experiments.table3 import measure_errors

        seeds = np.array([3, 77, 150])
        na_error, sa_error, total_error = measure_errors(analog, 5, 10, seeds)
        assert total_error <= na_error + sa_error
