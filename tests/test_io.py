"""Unit tests for repro.graph.io."""

import io

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph import read_edge_list, write_edge_list
from repro.graph.graph import Graph


class TestReadEdgeList:
    def test_basic_parse(self):
        text = io.StringIO("0 1\n1 2\n2 0\n")
        graph, ids = read_edge_list(text)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert ids.tolist() == [0, 1, 2]

    def test_comments_skipped(self):
        text = io.StringIO("% KONECT header\n# SNAP header\n0 1\n1 0\n")
        graph, _ = read_edge_list(text)
        assert graph.num_edges == 2

    def test_blank_lines_skipped(self):
        text = io.StringIO("0 1\n\n\n1 0\n")
        graph, _ = read_edge_list(text)
        assert graph.num_edges == 2

    def test_tab_and_extra_columns(self):
        text = io.StringIO("0\t1\t42\n1\t0\t7\n")
        graph, _ = read_edge_list(text)
        assert graph.num_edges == 2

    def test_relabel_sparse_ids(self):
        text = io.StringIO("100 200\n200 100\n")
        graph, ids = read_edge_list(text)
        assert graph.num_nodes == 2
        assert ids.tolist() == [100, 200]

    def test_no_relabel_uses_raw_ids(self):
        text = io.StringIO("0 3\n3 0\n")
        graph, ids = read_edge_list(text, relabel=False)
        assert graph.num_nodes == 4
        assert ids.tolist() == [0, 1, 2, 3]

    def test_explicit_n_adds_isolated_nodes(self):
        text = io.StringIO("0 1\n1 0\n")
        graph, ids = read_edge_list(text, n=5)
        assert graph.num_nodes == 5
        # Isolated nodes get self-loops under the default policy.
        assert graph.adjacency[4, 4] == 1.0

    def test_dangling_default_selfloop(self):
        text = io.StringIO("0 1\n")
        graph, _ = read_edge_list(text)
        assert graph.dangling_nodes.size == 0

    def test_empty_file_rejected(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("% only comments\n"))

    def test_single_column_rejected(self):
        with pytest.raises(GraphFormatError, match="two columns"):
            read_edge_list(io.StringIO("0\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(io.StringIO("a b\n"))

    def test_from_path(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("0 1\n1 2\n2 0\n")
        graph, _ = read_edge_list(path)
        assert graph.num_edges == 3


class TestWriteEdgeList:
    def test_round_trip_memory(self, small_community):
        buffer = io.StringIO()
        write_edge_list(small_community, buffer)
        buffer.seek(0)
        graph, _ = read_edge_list(buffer)
        assert graph.num_nodes == small_community.num_nodes
        assert graph.num_edges == small_community.num_edges
        np.testing.assert_array_equal(
            graph.adjacency.toarray(), small_community.adjacency.toarray()
        )

    def test_round_trip_file(self, tmp_path):
        graph = Graph(3, [0, 1, 2], [1, 2, 0])
        path = tmp_path / "g.tsv"
        write_edge_list(graph, path, header="test graph")
        loaded, _ = read_edge_list(path)
        assert loaded.num_edges == 3
        assert "test graph" in path.read_text()

    def test_header_line_format(self):
        graph = Graph(2, [0, 1], [1, 0])
        buffer = io.StringIO()
        write_edge_list(graph, buffer, header="hello")
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "% hello"
        assert "nodes=2" in lines[1]
