"""Unit tests for repro.analysis (matrix powers, block-wise drift)."""

import numpy as np
import pytest

from repro.analysis.blockwise import family_drift, family_drift_comparison
from repro.analysis.matrix_power import (
    block_density_grid,
    column_difference_statistic,
    matrix_power_nnz,
)
from repro.core.bounds import family_norm
from repro.exceptions import ParameterError


class TestMatrixPowerNnz:
    def test_power_one_matches_edges(self, small_community):
        nnz = matrix_power_nnz(small_community, [1])
        assert nnz[1] == small_community.num_edges

    def test_nnz_grows_with_power(self, small_community):
        nnz = matrix_power_nnz(small_community, [1, 3, 5])
        assert nnz[1] < nnz[3] <= nnz[5]

    def test_bounded_by_n_squared(self, small_community):
        n = small_community.num_nodes
        nnz = matrix_power_nnz(small_community, [7])
        assert nnz[7] <= n * n

    def test_validation(self, small_community):
        with pytest.raises(ParameterError):
            matrix_power_nnz(small_community, [])
        with pytest.raises(ParameterError):
            matrix_power_nnz(small_community, [0])


class TestColumnDifferenceStatistic:
    def test_range(self, small_community):
        """C_i lies in [0, 2] (columns are unit vectors)."""
        stats = column_difference_statistic(small_community, [1, 5], num_seeds=5)
        for value in stats.values():
            assert 0.0 <= value <= 2.0

    def test_decreases_with_power(self, small_community):
        """The paper's Figure 4(b) shape: densification shrinks C_i."""
        stats = column_difference_statistic(
            small_community, [1, 5], num_seeds=10, rng=0
        )
        assert stats[5] < stats[1]

    def test_near_two_for_sparse_power_one(self, small_community):
        """At i=1 columns rarely overlap, so C_1 is close to 2."""
        stats = column_difference_statistic(small_community, [1], num_seeds=10)
        assert stats[1] > 1.5

    def test_deterministic(self, small_community):
        a = column_difference_statistic(small_community, [3], num_seeds=5, rng=1)
        b = column_difference_statistic(small_community, [3], num_seeds=5, rng=1)
        assert a == b


class TestBlockDensityGrid:
    def test_grid_sums_to_nnz(self, small_community):
        grid = block_density_grid(small_community, 1, grid=8)
        assert grid.sum() == small_community.num_edges

    def test_grid_shape(self, small_community):
        grid = block_density_grid(small_community, 3, grid=4)
        assert grid.shape == (4, 4)

    def test_dense_power_counts(self, small_community):
        """At high power the matrix is nearly dense — counts near cell area."""
        n = small_community.num_nodes
        grid = block_density_grid(small_community, 8, grid=2)
        assert grid.sum() > 0.5 * n * n

    def test_validation(self, small_community):
        with pytest.raises(ParameterError):
            block_density_grid(small_community, 0)
        with pytest.raises(ParameterError):
            block_density_grid(small_community, 1, grid=0)


class TestFamilyDrift:
    def test_bounded(self, small_community):
        """Drift is at most 2 ||f||_1 = 2 (1-(1-c)^S)."""
        drift = family_drift(small_community, 0, s_iteration=5, c=0.15)
        assert 0.0 <= drift <= 2.0 * family_norm(0.15, 5) + 1e-9

    def test_zero_on_complete_graph_symmetric_seedless_case(self, tiny_complete):
        """On a complete graph every distribution is one step from uniform;
        drift is small but positive due to the seed spike."""
        drift = family_drift(tiny_complete, 0, s_iteration=5)
        assert drift < 0.5

    def test_community_graph_lower_than_random(self, small_community):
        """The Figure 6 claim, at fixture scale."""
        real, random_drift = family_drift_comparison(
            small_community, s_iteration=5, num_seeds=10, rng=0
        )
        assert real < random_drift

    def test_invalid_s(self, small_community):
        with pytest.raises(ParameterError):
            family_drift(small_community, 0, s_iteration=0)
