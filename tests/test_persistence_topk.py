"""Tests for TPA save/load persistence and the PPRMethod.top_k helper."""

import numpy as np
import pytest

from repro.core.tpa import TPA
from repro.exceptions import NotPreprocessedError, ParameterError
from repro.graph.generators import community_graph


class TestTPAPersistence:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory, small_community):
        method = TPA(s_iteration=4, t_iteration=9, c=0.2, tol=1e-8)
        method.preprocess(small_community)
        directory = tmp_path_factory.mktemp("tpa_state")
        method.save(directory)
        return method, directory

    def test_round_trip_queries_match(self, saved, small_community):
        original, directory = saved
        loaded = TPA.load(directory, small_community)
        np.testing.assert_allclose(loaded.query(7), original.query(7))

    def test_parameters_restored(self, saved, small_community):
        _, directory = saved
        loaded = TPA.load(directory, small_community)
        assert loaded.s_iteration == 4
        assert loaded.t_iteration == 9
        assert loaded.c == 0.2
        assert loaded.tol == 1e-8

    def test_stranger_vector_restored_exactly(self, saved, small_community):
        original, directory = saved
        loaded = TPA.load(directory, small_community)
        np.testing.assert_array_equal(
            loaded.stranger_vector, original.stranger_vector
        )

    def test_save_requires_preprocess(self, tmp_path):
        with pytest.raises(NotPreprocessedError):
            TPA().save(tmp_path)

    def test_load_missing_state(self, tmp_path, small_community):
        with pytest.raises(ParameterError, match="not found"):
            TPA.load(tmp_path, small_community)

    def test_load_wrong_graph_size(self, saved):
        _, directory = saved
        other = community_graph(100, avg_degree=5, seed=1)
        with pytest.raises(ParameterError, match="node"):
            TPA.load(directory, other)


class TestTopK:
    @pytest.fixture(scope="class")
    def method(self, small_community):
        tpa = TPA(s_iteration=5, t_iteration=10)
        tpa.preprocess(small_community)
        return tpa

    def test_result_size(self, method):
        assert method.top_k(0, 10).size == 10

    def test_seed_excluded_by_default(self, method):
        assert 0 not in method.top_k(0, 50)

    def test_seed_included_when_asked(self, method):
        picks = method.top_k(0, 5, exclude_seed=False)
        assert picks[0] == 0  # the seed always ranks first in its own RWR

    def test_neighbors_excluded(self, method, small_community):
        neighbors = set(small_community.out_neighbors(3).tolist())
        picks = method.top_k(3, 50, exclude_neighbors=True)
        assert not (set(picks.tolist()) & neighbors)

    def test_matches_manual_ranking(self, method):
        scores = method.query(5)
        manual = [
            int(v) for v in np.argsort(-scores, kind="stable") if v != 5
        ][:10]
        np.testing.assert_array_equal(method.top_k(5, 10), manual)

    def test_k_validation(self, method):
        with pytest.raises(ValueError):
            method.top_k(0, 0)

    def test_works_for_all_method_types(self, small_community):
        """top_k lives on the base class — spot-check a baseline."""
        from repro.baselines import Fora

        method = Fora(seed=0)
        method.preprocess(small_community)
        assert method.top_k(2, 10).size == 10
