"""Unit tests for repro.graph.datasets."""

import pytest

from repro.exceptions import ParameterError
from repro.graph.datasets import (
    DATASETS,
    clear_cache,
    dataset_names,
    iter_datasets,
    load_dataset,
)


class TestRegistry:
    def test_seven_datasets(self):
        assert len(DATASETS) == 7

    def test_order_smallest_first(self):
        names = dataset_names()
        assert names[0] == "slashdot"
        assert names[-1] == "friendster"
        sizes = [DATASETS[n].analog_nodes for n in names]
        assert sizes == sorted(sizes)

    def test_paper_sizes_recorded(self):
        spec = DATASETS["friendster"]
        assert spec.paper_nodes == 68_349_466
        assert spec.paper_edges == 2_586_147_869

    def test_table2_parameters(self):
        assert DATASETS["slashdot"].s_iteration == 5
        assert DATASETS["slashdot"].t_iteration == 15
        assert DATASETS["twitter"].s_iteration == 4
        assert DATASETS["twitter"].t_iteration == 6

    def test_density_ordering_mirrors_paper(self):
        """m/n ratio ordering should match the original datasets."""
        ratio = {
            name: DATASETS[name].avg_degree for name in dataset_names()
        }
        assert ratio["slashdot"] < ratio["pokec"] < ratio["friendster"]


class TestLoadDataset:
    def test_load_small(self):
        graph = load_dataset("slashdot", scale=0.1)
        assert graph.num_nodes == 200
        assert graph.dangling_nodes.size == 0

    def test_case_insensitive(self):
        graph = load_dataset("SLASHDOT", scale=0.1)
        assert graph.num_nodes == 200

    def test_cache_returns_same_object(self):
        a = load_dataset("slashdot", scale=0.1)
        b = load_dataset("slashdot", scale=0.1)
        assert a is b

    def test_clear_cache(self):
        a = load_dataset("slashdot", scale=0.1)
        clear_cache()
        b = load_dataset("slashdot", scale=0.1)
        assert a is not b

    def test_scale_changes_size(self):
        small = load_dataset("slashdot", scale=0.1)
        large = load_dataset("slashdot", scale=0.2)
        assert large.num_nodes == 2 * small.num_nodes

    def test_minimum_size_floor(self):
        graph = load_dataset("slashdot", scale=0.001)
        assert graph.num_nodes >= 64

    def test_unknown_dataset(self):
        with pytest.raises(ParameterError, match="unknown dataset"):
            load_dataset("orkut")

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            load_dataset("slashdot", scale=0.0)

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        clear_cache()
        graph = load_dataset("slashdot")
        assert graph.num_nodes == 200
        clear_cache()

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ParameterError):
            load_dataset("slashdot")


class TestIterDatasets:
    def test_yields_all(self):
        pairs = list(iter_datasets(scale=0.05))
        assert len(pairs) == 7
        assert pairs[0][0].name == "slashdot"
        assert pairs[0][1].num_nodes >= 64
