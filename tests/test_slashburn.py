"""Unit tests for repro.graph.slashburn."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph import slashburn, star_graph
from repro.graph.generators import community_graph


class TestSlashburn:
    def test_permutation_valid(self, small_community):
        ordering = slashburn(small_community)
        n = small_community.num_nodes
        np.testing.assert_array_equal(
            np.sort(ordering.permutation), np.arange(n)
        )

    def test_hub_count_consistent(self, small_community):
        ordering = slashburn(small_community)
        assert 0 < ordering.num_hubs < small_community.num_nodes
        assert ordering.iterations >= 1

    def test_blocks_cover_nonhubs(self, small_community):
        ordering = slashburn(small_community)
        n = small_community.num_nodes
        covered = np.sort(np.concatenate(ordering.blocks))
        np.testing.assert_array_equal(
            covered, np.arange(ordering.num_hubs, n)
        )

    def test_blocks_disjoint(self, small_community):
        ordering = slashburn(small_community)
        total = sum(len(block) for block in ordering.blocks)
        unique = len(set(np.concatenate(ordering.blocks).tolist()))
        assert total == unique

    def test_first_hub_is_highest_degree(self, small_community):
        ordering = slashburn(small_community, k=1)
        sym = small_community.undirected_view()
        degree = np.asarray(sym.sum(axis=1)).ravel()
        assert degree[ordering.permutation[0]] == degree.max()

    def test_star_hub_detected(self):
        graph = star_graph(20)
        ordering = slashburn(graph, k=1)
        assert ordering.permutation[0] == 0
        # Removing the hub shatters the star into singleton spokes.
        assert len(ordering.blocks) == 19

    def test_nonhub_part_is_block_diagonal(self):
        """No edges may cross between different non-hub blocks."""
        graph = community_graph(200, avg_degree=6, seed=3)
        ordering = slashburn(graph)
        new_of_old = np.empty(graph.num_nodes, dtype=np.int64)
        new_of_old[ordering.permutation] = np.arange(graph.num_nodes)
        block_of = {}
        for index, block in enumerate(ordering.blocks):
            for new_id in block.tolist():
                block_of[new_id] = index
        src, dst = graph.edges()
        for u, v in zip(new_of_old[src].tolist(), new_of_old[dst].tolist()):
            if u >= ordering.num_hubs and v >= ordering.num_hubs:
                assert block_of[u] == block_of[v]

    def test_larger_k_fewer_iterations(self, small_community):
        few = slashburn(small_community, k=2)
        many = slashburn(small_community, k=20)
        assert many.iterations <= few.iterations

    def test_max_block_respected_for_final_remainder(self, small_community):
        ordering = slashburn(small_community, k=5, max_block=50)
        # Final remainder block (if any) is bounded; spokes are small by
        # construction, so every block should be modest.
        largest = max(len(block) for block in ordering.blocks)
        assert largest <= max(50, ordering.num_hubs)

    def test_invalid_k(self, small_community):
        with pytest.raises(ParameterError):
            slashburn(small_community, k=0)
