"""Property-based tests (hypothesis) for the graph substrate.

Complements ``test_properties.py`` (core invariants) with substrate-level
round trips and orderings on arbitrary generated graphs.
"""

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.generators import community_graph, gnm_random_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.slashburn import slashburn
from repro.graph.stats import gini_coefficient
from repro.metrics.memory import format_bytes

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _graph_strategy():
    return st.builds(
        lambda kind, n, d, seed: (
            community_graph(n, avg_degree=d, num_communities=4, seed=seed)
            if kind
            else gnm_random_graph(n, n * d, seed=seed)
        ),
        st.booleans(),
        st.integers(min_value=16, max_value=100),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )


class TestIORoundTrip:
    @_SETTINGS
    @given(graph=_graph_strategy())
    def test_write_read_identity(self, graph):
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        buffer.seek(0)
        loaded, ids = read_edge_list(buffer)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        np.testing.assert_array_equal(
            loaded.adjacency.toarray(), graph.adjacency.toarray()
        )


class TestPermutationInvariance:
    @_SETTINGS
    @given(graph=_graph_strategy(), seed=st.integers(0, 1_000))
    def test_rwr_commutes_with_relabeling(self, graph, seed):
        """Relabeling nodes then querying equals querying then relabeling."""
        from repro.ranking.rwr import rwr_power

        rng = np.random.default_rng(seed)
        perm = rng.permutation(graph.num_nodes)
        permuted = graph.permute(perm)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(graph.num_nodes)

        original_scores = rwr_power(graph, int(perm[0]), tol=1e-12)
        permuted_scores = rwr_power(permuted, 0, tol=1e-12)
        # New node i is old node perm[i].
        np.testing.assert_allclose(
            permuted_scores, original_scores[perm], atol=1e-9
        )


class TestSlashburnProperties:
    @_SETTINGS
    @given(graph=_graph_strategy(), k=st.integers(min_value=1, max_value=8))
    def test_permutation_and_cover(self, graph, k):
        ordering = slashburn(graph, k=k)
        n = graph.num_nodes
        np.testing.assert_array_equal(
            np.sort(ordering.permutation), np.arange(n)
        )
        if ordering.num_hubs < n:
            covered = np.sort(np.concatenate(ordering.blocks))
            np.testing.assert_array_equal(
                covered, np.arange(ordering.num_hubs, n)
            )


class TestStatsProperties:
    @_SETTINGS
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_gini_in_unit_interval(self, values):
        coefficient = gini_coefficient(np.asarray(values))
        assert -1e-9 <= coefficient < 1.0

    @_SETTINGS
    @given(num_bytes=st.integers(min_value=0, max_value=2**50))
    def test_format_bytes_total_function(self, num_bytes):
        text = format_bytes(num_bytes)
        assert any(text.endswith(unit) for unit in (" B", " KB", " MB", " GB", " TB"))


class TestDiskGraphProperty:
    @_SETTINGS
    @given(
        graph=_graph_strategy(),
        stripe=st.integers(min_value=1, max_value=64),
        seed=st.integers(0, 1_000),
    )
    def test_disk_propagate_equivalent(self, graph, stripe, seed, tmp_path_factory):
        from repro.graph.diskgraph import DiskGraph

        directory = tmp_path_factory.mktemp("prop_disk")
        disk = DiskGraph.build(graph, directory, rows_per_stripe=stripe)
        x = np.random.default_rng(seed).random(graph.num_nodes)
        np.testing.assert_allclose(
            disk.propagate(x), graph.propagate(x), atol=1e-12
        )
