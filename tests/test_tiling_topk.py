"""The blocked ranking pipeline: hub-aware tiled SpMM + fused top-k.

Contracts asserted here:

* ``spmm_tiled`` is **bitwise identical** to ``spmm`` on the numpy
  backend for arbitrary tilings (property-tested), and the compiled
  tiled kernel — run as its interpreted twin — reproduces ``A @ x``
  exactly too;
* ``select_top_k_many`` matches the looped ``select_top_k`` reference
  including ban masks and tie ordering, on both the numpy fallback and
  the (interpreted / compiled) bounded-heap kernel;
* ``row_tiling`` produces well-formed, hub-pinned, block-aligned
  boundaries and the configuration knobs (``REPRO_KERNEL_TILE`` /
  ``set_tile_rows``) reach ``cache_token``;
* the Engine's streamed top-k paths (``batch`` column blocks, chunked
  ``serve``) return exactly what the materialized paths return, and
  a SlashBurn reordering attaches a tiling to the serving graph.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import kernels
from repro.engine import Engine, QueryRequest, create_method
from repro.exceptions import GraphFormatError, ParameterError
from repro.kernels import (
    RowTiling,
    row_tiling,
    select_top_k,
    select_top_k_many,
    set_tile_rows,
)
from repro.kernels import tiling as tiling_module
from repro.method import banned_mask, banned_mask_many

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@pytest.fixture(autouse=True)
def _restore_tile_policy():
    """The tile height is process-global; never leak it between tests."""
    before = tiling_module._tile_rows
    yield
    tiling_module._tile_rows = before


def _random_csr(rng: np.random.Generator, rows: int, cols: int, density: float):
    matrix = sp.random_array(
        (rows, cols), density=density, format="csr", rng=rng,
        data_sampler=lambda size: rng.standard_normal(size),
    )
    return sp.csr_array(matrix)


class TestRowTiling:
    def test_boundaries_partition_the_rows(self):
        tiling = row_tiling(1000, num_hubs=37, tile_height=100)
        bounds = tiling.boundaries
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert (np.diff(bounds) > 0).all()
        assert (np.diff(bounds) <= 100).all()
        # The hub/spoke frontier is always a tile boundary.
        assert 37 in bounds

    def test_block_alignment_prefers_block_frontiers(self):
        starts = np.array([20, 180, 260, 430])
        tiling = row_tiling(
            500, num_hubs=20, tile_height=100, block_starts=starts
        )
        # Every block start within reach became a cut; no tile exceeds
        # the height.
        for cut in (20, 180, 260):
            assert cut in tiling.boundaries
        assert (np.diff(tiling.boundaries) <= 100).all()

    def test_oversized_blocks_are_split(self):
        tiling = row_tiling(
            400, num_hubs=0, tile_height=50,
            block_starts=np.array([300]),  # one 300-row block
        )
        assert (np.diff(tiling.boundaries) <= 50).all()
        assert 300 in tiling.boundaries

    def test_all_hubs_and_single_tile_edges(self):
        assert row_tiling(10, num_hubs=10, tile_height=4).num_rows == 10
        assert row_tiling(10, tile_height=1000).num_tiles == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ParameterError):
            row_tiling(0)
        with pytest.raises(ParameterError):
            row_tiling(10, num_hubs=11)
        with pytest.raises(ParameterError):
            row_tiling(10, tile_height=0)
        with pytest.raises(ParameterError):
            RowTiling(boundaries=np.array([0, 5, 5, 10]))
        with pytest.raises(ParameterError):
            RowTiling(boundaries=np.array([1, 10]))

    def test_tile_rows_config_roundtrip(self):
        previous = set_tile_rows(512)
        try:
            assert kernels.tile_rows() == 512
            assert "tile-512" in kernels.cache_token()
        finally:
            set_tile_rows(previous)
        set_tile_rows(None)
        assert kernels.tile_rows() == kernels.DEFAULT_TILE_ROWS
        assert "tile-auto" in kernels.cache_token()
        with pytest.raises(ParameterError):
            set_tile_rows(0)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TILE", "2048")
        assert tiling_module._resolve_env_tile() == 2048
        monkeypatch.setenv("REPRO_KERNEL_TILE", "auto")
        assert tiling_module._resolve_env_tile() is None
        monkeypatch.setenv("REPRO_KERNEL_TILE", "banana")
        with pytest.warns(UserWarning, match="REPRO_KERNEL_TILE"):
            assert tiling_module._resolve_env_tile() is None


class TestTiledSpmmNumpyBitwise:
    """Tiled == untiled, bit for bit, on the fallback backend."""

    @_SETTINGS
    @given(
        rows=st.integers(1, 120),
        cols=st.integers(1, 80),
        density=st.floats(0.0, 0.5),
        batch=st.integers(1, 7),
        height=st.integers(1, 140),
        hub_fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_bitwise_identical_to_spmm(
        self, rows, cols, density, batch, height, hub_fraction, seed
    ):
        previous = kernels.set_backend("numpy")
        try:
            rng = np.random.default_rng(seed)
            matrix = _random_csr(rng, rows, cols, density)
            x = rng.standard_normal((cols, batch))
            tiling = row_tiling(
                rows, num_hubs=int(hub_fraction * rows), tile_height=height
            )
            np.testing.assert_array_equal(
                kernels.spmm_tiled(matrix, x, tiling=tiling),
                kernels.spmm(matrix, x),
            )
        finally:
            kernels.set_backend(previous)

    def test_out_buffer_and_row_mismatch(self, rng):
        matrix = _random_csr(np.random.default_rng(0), 30, 30, 0.2)
        x = rng.random((30, 4))
        out = np.full((30, 4), np.nan)
        np.testing.assert_array_equal(
            kernels.spmm_tiled(matrix, x, out=out), matrix @ x
        )
        with pytest.raises(ParameterError, match="tiling covers"):
            kernels.spmm_tiled(matrix, x, tiling=row_tiling(29))


class TestInterpretedCompiledKernels:
    """The numba kernels, exec'd as plain Python (see conftest)."""

    def test_tiled_spmm_matches_scipy_bitwise(self, numba_source_namespace):
        rng = np.random.default_rng(7)
        for dtype in (np.float64, np.float32):
            matrix = _random_csr(rng, 90, 90, 0.2).astype(dtype)
            x = np.ascontiguousarray(rng.random((90, 5)).astype(dtype))
            out = np.empty((90, 5), dtype)
            bounds = row_tiling(90, num_hubs=11, tile_height=17).boundaries
            numba_source_namespace["_spmm_tiled"](
                matrix.indptr, matrix.indices, matrix.data, x, out, bounds
            )
            np.testing.assert_array_equal(out, matrix @ x)

    @_SETTINGS
    @given(
        n=st.integers(1, 150),
        k=st.integers(1, 170),
        pool=st.integers(1, 8),
        ban_fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_heap_selection_matches_looped_reference(
        self, numba_source_namespace, n, k, pool, ban_fraction, seed
    ):
        """Bans and ties: integer-valued scores force heavy tie traffic,
        and the ban mask must never leak a banned id into a row."""
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, pool, size=(3, n)).astype(np.float64)
        banned = rng.random((3, n)) < ban_fraction
        out = np.empty((3, k), dtype=np.int64)
        numba_source_namespace["_select_top_k_many"](
            scores, banned, True, k, out
        )
        for row in range(3):
            picks = select_top_k(scores[row], k, banned[row])
            np.testing.assert_array_equal(out[row, : picks.size], picks)
            assert (out[row, picks.size:] == -1).all()

    def test_heap_selection_without_bans(self, numba_source_namespace):
        rng = np.random.default_rng(5)
        scores = rng.random((4, 64))
        scores[:, 10:20] = scores[:, [10]]  # tie plateau
        out = np.empty((4, 12), dtype=np.int64)
        numba_source_namespace["_select_top_k_many"](
            scores, np.empty((0, 0), dtype=np.bool_), False, 12, out
        )
        for row in range(4):
            np.testing.assert_array_equal(
                out[row], select_top_k(scores[row], 12)
            )


class TestSelectTopKMany:
    """The public dispatcher (numpy fallback in this environment)."""

    @_SETTINGS
    @given(
        n=st.integers(1, 120),
        k=st.integers(1, 140),
        batch=st.integers(0, 6),
        ban_fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_matches_looped_select_top_k(
        self, n, k, batch, ban_fraction, seed
    ):
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, 6, size=(batch, n)).astype(np.float64)
        banned = rng.random((batch, n)) < ban_fraction
        result = select_top_k_many(scores, k, banned=banned)
        assert result.shape == (batch, k) and result.dtype == np.int64
        for row in range(batch):
            picks = select_top_k(scores[row], k, banned[row])
            np.testing.assert_array_equal(result[row, : picks.size], picks)
            assert (result[row, picks.size:] == -1).all()

    def test_transposed_scores_accepted(self, rng):
        """cpi_many returns transposed iterate buffers; selection must
        not choke on (or copy) non-contiguous rows."""
        base = np.asfortranarray(rng.random((5, 40)))
        assert not base.flags.c_contiguous
        result = select_top_k_many(base, 3)
        for row in range(5):
            np.testing.assert_array_equal(
                result[row], select_top_k(base[row], 3)
            )

    def test_out_buffer_contract(self, rng):
        scores = rng.random((3, 20))
        out = np.empty((3, 4), dtype=np.int64)
        assert select_top_k_many(scores, 4, out=out) is out
        with pytest.raises(ParameterError):
            select_top_k_many(scores, 4, out=np.empty((3, 5), dtype=np.int64))
        with pytest.raises(ParameterError):
            select_top_k_many(scores, 4, out=np.empty((3, 4), dtype=np.int32))
        with pytest.raises(ParameterError):
            select_top_k_many(scores, 0)
        with pytest.raises(ParameterError):
            select_top_k_many(scores[0], 4)
        with pytest.raises(ParameterError):
            select_top_k_many(scores, 4, banned=np.zeros((3, 19), dtype=bool))

    def test_scratch_does_not_change_select_top_k(self, rng):
        scores = rng.random(200)
        banned = rng.random(200) < 0.3
        scratch = np.full(200, np.nan)
        np.testing.assert_array_equal(
            select_top_k(scores, 17, banned, scratch=scratch),
            select_top_k(scores, 17, banned),
        )


@pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)
class TestCompiledBackendAgreement:
    """The compiled kernels through the public dispatchers."""

    def test_spmm_tiled_close_to_fallback(self):
        rng = np.random.default_rng(0)
        matrix = _random_csr(rng, 200, 200, 0.1)
        x = rng.standard_normal((200, 8))
        tiling = row_tiling(200, num_hubs=23, tile_height=31)
        previous = kernels.set_backend("numpy")
        try:
            reference = kernels.spmm_tiled(matrix, x, tiling=tiling)
            kernels.set_backend("numba")
            np.testing.assert_allclose(
                kernels.spmm_tiled(matrix, x, tiling=tiling), reference,
                rtol=0, atol=1e-12,
            )
            np.testing.assert_allclose(
                kernels.spmm(matrix, x), reference, rtol=0, atol=1e-12
            )
        finally:
            kernels.set_backend(previous)

    def test_select_top_k_many_matches_looped(self):
        rng = np.random.default_rng(1)
        scores = rng.integers(0, 9, size=(16, 300)).astype(np.float64)
        banned = rng.random((16, 300)) < 0.25
        previous = kernels.set_backend("numba")
        try:
            result = select_top_k_many(scores, 40, banned=banned)
        finally:
            kernels.set_backend(previous)
        for row in range(16):
            picks = select_top_k(scores[row], 40, banned[row])
            np.testing.assert_array_equal(result[row, : picks.size], picks)
            assert (result[row, picks.size:] == -1).all()


class TestGraphTiling:
    def test_attached_tiling_is_bitwise_neutral(self, small_community, rng):
        x = rng.random((small_community.num_nodes, 6))
        plain = small_community.propagate(x)
        decayed = small_community.propagate_decayed(x, 0.85)
        small_community.set_spmm_tiling(
            row_tiling(small_community.num_nodes, num_hubs=40, tile_height=64)
        )
        try:
            assert small_community.spmm_tiling is not None
            np.testing.assert_array_equal(small_community.propagate(x), plain)
            np.testing.assert_array_equal(
                small_community.propagate_decayed(x, 0.85), decayed
            )
        finally:
            small_community.set_spmm_tiling(None)
        assert small_community.spmm_tiling is None

    def test_wrong_size_tiling_rejected(self, small_community):
        with pytest.raises(GraphFormatError, match="tiling covers"):
            small_community.set_spmm_tiling(row_tiling(7))

    def test_reordering_builds_hub_aligned_tiling(self, medium_community):
        reordering = kernels.locality_reordering(medium_community)
        tiling = reordering.spmm_tiling(tile_height=100)
        assert tiling.num_hubs == reordering.num_hubs
        assert tiling.boundaries[-1] == medium_community.num_nodes
        if 0 < reordering.num_hubs < medium_community.num_nodes:
            assert reordering.num_hubs in tiling.boundaries
        assert (np.diff(tiling.boundaries) <= 100).all()
        # Interior cuts of the spoke region land on block frontiers
        # whenever any frontier was within reach of the tile height.
        spoke_cuts = tiling.boundaries[
            (tiling.boundaries > reordering.num_hubs)
            & (tiling.boundaries < medium_community.num_nodes)
        ]
        frontiers = set(reordering.block_starts.tolist())
        if frontiers and spoke_cuts.size:
            assert any(int(cut) in frontiers for cut in spoke_cuts)


class TestBannedMasks:
    def test_banned_mask_out_reuse(self, small_community):
        out = np.ones(small_community.num_nodes, dtype=bool)
        mask = banned_mask(small_community, 3, True, True, out=out)
        assert mask is out
        reference = banned_mask(small_community, 3, True, True)
        np.testing.assert_array_equal(mask, reference)
        # Stale contents from a previous request are fully cleared.
        mask2 = banned_mask(small_community, 5, True, False, out=out)
        assert mask2 is out
        np.testing.assert_array_equal(
            mask2, banned_mask(small_community, 5, True, False)
        )

    def test_banned_mask_many_matches_per_row(self, small_community):
        seeds = np.array([0, 9, 17, 9], dtype=np.int64)
        many = banned_mask_many(small_community, seeds, True, True)
        for row, seed in enumerate(seeds.tolist()):
            np.testing.assert_array_equal(
                many[row], banned_mask(small_community, seed, True, True)
            )
        assert banned_mask_many(small_community, seeds, False, False) is None

    def test_huge_mask_not_retained_by_top_k_many(
        self, small_community, monkeypatch
    ):
        """Over the retain limit, the (B, n) mask is transient: a one-off
        wide batch must not pin batch-sized memory (or distort
        preprocessed_bytes) for the method's lifetime."""
        import repro.method as method_module
        from repro.engine import create_method

        method = create_method("cpi")
        method.preprocess(small_community)
        monkeypatch.setattr(method_module, "_RANK_MASK_RETAIN_LIMIT", 0)
        rankings = method.top_k_many([0, 1, 2], 5, exclude_neighbors=True)
        assert rankings.shape == (3, 5)
        assert "rank.banned_many" not in method._workspace._buffers
        # Under the limit the buffer is retained and reused.
        monkeypatch.setattr(
            method_module, "_RANK_MASK_RETAIN_LIMIT", 1 << 26
        )
        method.top_k_many([0, 1, 2], 5, exclude_neighbors=True)
        first = method._workspace._buffers["rank.banned_many"]
        method.top_k_many([3, 4, 5], 5, exclude_neighbors=True)
        assert method._workspace._buffers["rank.banned_many"] is first

    def test_banned_mask_many_out_reuse(self, small_community):
        seeds = np.array([2, 4], dtype=np.int64)
        out = np.ones((2, small_community.num_nodes), dtype=bool)
        many = banned_mask_many(small_community, seeds, True, False, out=out)
        assert many is out
        assert int(many.sum()) == 2


class TestEngineStreaming:
    @pytest.fixture(scope="class")
    def engines(self, medium_community):
        def build(**kwargs):
            return Engine(
                create_method("tpa", s_iteration=4, t_iteration=8),
                medium_community, **kwargs,
            )
        return build

    def test_streamed_batch_matches_materialized(self, engines):
        rng = np.random.default_rng(11)
        seeds = rng.choice(1500, size=40, replace=True)
        requests = [
            QueryRequest(seed=int(s), k=10, exclude_neighbors=(i % 3 == 0))
            for i, s in enumerate(seeds)
        ]
        materialized = engines(stream_block=10_000).batch(requests)
        streamed = engines(stream_block=7).batch(requests)
        for a, b in zip(materialized, streamed):
            assert a.seed == b.seed and a.cached == b.cached
            assert a.scores is None and b.scores is None
            np.testing.assert_array_equal(a.top_nodes, b.top_nodes)
            np.testing.assert_array_equal(a.top_scores, b.top_scores)

    def test_fused_homogeneous_batch_matches_materialized(self, engines):
        """Uniform (k, exclusion) requests take the fused per-block
        select_top_k_many branch — results must still be identical."""
        rng = np.random.default_rng(23)
        seeds = rng.choice(1500, size=30, replace=True)
        requests = [
            QueryRequest(seed=int(s), k=12, exclude_neighbors=True)
            for s in seeds
        ]
        materialized = engines(stream_block=10_000).batch(requests)
        streamed = engines(stream_block=9).batch(requests)
        for a, b in zip(materialized, streamed):
            np.testing.assert_array_equal(a.top_nodes, b.top_nodes)
            np.testing.assert_array_equal(a.top_scores, b.top_scores)
            assert a.cached == b.cached

    def test_streamed_batch_counts_distinct_seeds(self, engines):
        engine = engines(stream_block=4)
        requests = [QueryRequest(seed=s, k=5) for s in (1, 2, 3, 1, 2, 4, 5, 6)]
        results = engine.batch(requests)
        stats = engine.stats()
        assert stats["cache_misses"] == 6  # distinct seeds
        assert stats["queries_served"] == 8
        assert [r.cached for r in results] == [
            False, False, False, True, True, False, False, False,
        ]

    def test_full_vector_requests_never_stream(self, engines):
        engine = engines(stream_block=1)
        requests = [QueryRequest(seed=s) for s in (0, 1, 2)]
        results = engine.batch(requests)
        assert all(r.scores is not None for r in results)

    def test_cached_engine_never_streams(self, engines, medium_community):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community, cache_size=16, stream_block=1,
        )
        requests = [QueryRequest(seed=s, k=5) for s in (0, 1, 2, 0)]
        engine.batch(requests)
        assert engine.stats()["cache_entries"] == 3

    def test_serve_chunked_matches_single_block(self, engines):
        rng = np.random.default_rng(2)
        seeds = rng.choice(1500, size=33, replace=False)
        one_block = engines(stream_block=10_000).serve(seeds, k=9)
        chunked = engines(stream_block=5).serve(seeds, k=9)
        np.testing.assert_array_equal(one_block, chunked)

    def test_stream_block_validated(self, engines):
        with pytest.raises(ParameterError, match="stream_block"):
            engines(stream_block=0)

    def test_reorder_attaches_tiling_and_streams(self, medium_community):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community, reorder="slashburn", stream_block=6,
        )
        assert engine.method.graph.spmm_tiling is not None
        assert engine.method.graph.spmm_tiling.num_hubs == (
            engine.reordering.num_hubs
        )
        # The original graph never carries the serving tiling.
        assert medium_community.spmm_tiling is None
        requests = [QueryRequest(seed=s, k=8) for s in range(20)]
        streamed = engine.batch(requests)
        reference = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community, reorder="slashburn", stream_block=10_000,
        ).batch(requests)
        for a, b in zip(streamed, reference):
            np.testing.assert_array_equal(a.top_nodes, b.top_nodes)
