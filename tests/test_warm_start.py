"""Warm-restart contracts: ``cpi``/``cpi_many`` ``x0=`` guesses, the
method-layer gate (:attr:`PPRMethod.supports_warm_start`), TPA's warm
re-preprocess on dynamic graphs, and the Engine's ``warm_start`` flag.

The documented accuracy tier under test: a warm run from any finite
guess lands within ``2 * tol / c`` (L1) of the cold run — both runs
stop when the residual mass drops below ``tol``, and the residual bounds
the remaining score mass by ``1/c`` — and a **zero** guess reproduces
the cold run bitwise (the residual restart computes exactly the cold
first iterate when ``x0 == 0``).
"""

import numpy as np
import pytest

from repro import (
    CPIMethod,
    Engine,
    ParameterError,
    TPA,
    community_graph,
    cpi,
    cpi_many,
    kernels,
)
from repro.dynamic import DynamicGraph

BACKENDS = kernels.available_backends()


@pytest.fixture
def backend_restore():
    previous = kernels.get_backend()
    yield
    kernels.set_backend(previous)


@pytest.fixture(scope="module")
def graph():
    return community_graph(400, avg_degree=8, num_communities=4, seed=11)


C = 0.15
TOL = 1e-9
WARM_BOUND = 2 * TOL / C


class TestCPIWarmStart:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_guess_is_bitwise_cold(self, graph, backend, backend_restore):
        kernels.set_backend(backend)
        cold = cpi(graph, seeds=3, c=C, tol=TOL)
        warm = cpi(
            graph, seeds=3, c=C, tol=TOL,
            x0=np.zeros(graph.num_nodes),
        )
        assert np.array_equal(cold.scores, warm.scores)
        assert warm.iterations == cold.iterations

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_converged_guess_restarts_instantly(
        self, graph, backend, backend_restore
    ):
        kernels.set_backend(backend)
        cold = cpi(graph, seeds=3, c=C, tol=TOL)
        warm = cpi(graph, seeds=3, c=C, tol=TOL, x0=cold.scores)
        assert warm.iterations < cold.iterations
        assert np.abs(warm.scores - cold.scores).sum() <= WARM_BOUND

    def test_stale_guess_still_lands_in_tolerance(self, graph):
        # A guess from a *different* (perturbed) graph: still converges,
        # still within the documented band of the cold answer.
        dyn = DynamicGraph(graph)
        stale = cpi(dyn, seeds=7, c=C, tol=TOL).scores
        dyn.add_edges([(7, 350), (350, 7), (12, 300)])
        dyn.compact()
        cold = cpi(dyn, seeds=7, c=C, tol=TOL)
        warm = cpi(dyn, seeds=7, c=C, tol=TOL, x0=stale)
        assert warm.iterations <= cold.iterations
        assert np.abs(warm.scores - cold.scores).sum() <= WARM_BOUND

    def test_x0_rejects_partial_series(self, graph):
        x0 = np.zeros(graph.num_nodes)
        with pytest.raises(ParameterError):
            cpi(graph, seeds=0, start_iteration=2, x0=x0)
        with pytest.raises(ParameterError):
            cpi(graph, seeds=0, terminal_iteration=5, x0=x0)

    def test_x0_rejects_wrong_shape(self, graph):
        with pytest.raises(ParameterError):
            cpi(graph, seeds=0, x0=np.zeros(graph.num_nodes - 1))


class TestCPIManyWarmStart:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_panel_is_bitwise_cold(self, graph, backend, backend_restore):
        kernels.set_backend(backend)
        seeds = [0, 5, 9]
        cold = cpi_many(graph, seeds, c=C, tol=TOL)
        warm = cpi_many(
            graph, seeds, c=C, tol=TOL,
            # x0 rides in the (n, B) iteration layout.
            x0=np.zeros((graph.num_nodes, len(seeds))),
        )
        assert np.array_equal(cold.scores, warm.scores)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_converged_panel_within_band(self, graph, backend, backend_restore):
        kernels.set_backend(backend)
        seeds = [0, 5, 9]
        cold = cpi_many(graph, seeds, c=C, tol=TOL)
        warm = cpi_many(graph, seeds, c=C, tol=TOL, x0=cold.scores.T.copy())
        per_seed = np.abs(warm.scores - cold.scores).sum(axis=1)
        assert float(per_seed.max()) <= WARM_BOUND

    def test_x0_rejects_wrong_layout(self, graph):
        seeds = [0, 5, 9]
        with pytest.raises(ParameterError):
            # (B, n) is the method-layer layout, not cpi_many's.
            cpi_many(graph, seeds, x0=np.zeros((3, graph.num_nodes)))
        with pytest.raises(ParameterError):
            cpi_many(graph, seeds, terminal_iteration=4,
                     x0=np.zeros((graph.num_nodes, 3)))


class TestMethodLayerGate:
    def test_cpi_method_accepts_row_major_guesses(self, graph):
        method = CPIMethod(c=C, tol=TOL)
        method.preprocess(graph)
        assert method.supports_warm_start
        seeds = np.array([2, 4])
        cold = method.query_many(seeds)
        warm = method.query_many(seeds, x0=cold)
        per_seed = np.abs(warm - cold).sum(axis=1)
        assert float(per_seed.max()) <= WARM_BOUND

    def test_cpi_method_rejects_wrong_shape(self, graph):
        method = CPIMethod(c=C, tol=TOL)
        method.preprocess(graph)
        with pytest.raises(ParameterError):
            method.query_many(np.array([2, 4]), x0=np.zeros((2, 10)))

    def test_tpa_rejects_warm_queries(self, graph):
        method = TPA(s_iteration=4, t_iteration=8, c=C)
        method.preprocess(graph)
        assert not method.supports_warm_start
        with pytest.raises(ParameterError):
            method.query_many(
                np.array([0]), x0=np.zeros((1, graph.num_nodes))
            )


class TestTPAWarmRePreprocess:
    def test_warm_re_preprocess_matches_fresh(self, graph):
        dyn = DynamicGraph(graph)
        method = TPA(s_iteration=4, t_iteration=8, c=C, tol=TOL)
        method.preprocess(dyn)
        assert method._pagerank is not None  # retained on dynamic graphs
        dyn.add_edges([(1, 399), (399, 1), (20, 340)])
        dyn.compact()
        method.preprocess(dyn)  # warm path: restarts from the retained iterate

        fresh = TPA(s_iteration=4, t_iteration=8, c=C, tol=TOL)
        fresh.preprocess(dyn)
        assert np.abs(method._stranger - fresh._stranger).sum() <= WARM_BOUND
        got = method.query(0)
        want = fresh.query(0)
        assert np.abs(got - want).sum() <= WARM_BOUND

    def test_static_graph_keeps_minimal_footprint(self, graph):
        method = TPA(s_iteration=4, t_iteration=8, c=C)
        method.preprocess(graph)
        # No epoch_token on the frozen graph: nothing retained beyond the
        # stranger vector, exactly the pre-dynamic footprint.
        assert method._pagerank is None


class TestEngineWarmStartFlag:
    def test_disabled_warm_start_is_cold_bitwise(self, graph):
        dyn = DynamicGraph(graph)
        engine = Engine(
            CPIMethod(c=C, tol=TOL), dyn, cache_size=8, warm_start=False
        )
        seed = 6
        engine.query(seed)            # caches the pre-mutation vector
        dyn.add_edges([(6, 390)])
        got = engine.query(seed).scores
        want = cpi(dyn, seeds=seed, c=C, tol=TOL).scores
        assert np.array_equal(got, want)

    def test_enabled_warm_start_within_band(self, graph):
        dyn = DynamicGraph(graph)
        engine = Engine(CPIMethod(c=C, tol=TOL), dyn, cache_size=8)
        seed = 6
        engine.query(seed)
        dyn.add_edges([(6, 390)])
        got = engine.query(seed).scores
        want = cpi(dyn, seeds=seed, c=C, tol=TOL).scores
        assert np.abs(got - want).sum() <= WARM_BOUND
