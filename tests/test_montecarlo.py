"""Unit tests for the Monte-Carlo walk engine and walk index."""

import numpy as np
import pytest

from repro.baselines.montecarlo import WalkIndex, monte_carlo_rwr, sample_walk_endpoints
from repro.exceptions import ParameterError
from repro.ranking.rwr import rwr_direct


class TestSampleWalkEndpoints:
    def test_shape_matches_starts(self, small_community):
        starts = np.array([0, 1, 2, 3])
        stops = sample_walk_endpoints(small_community, starts, rng=0)
        assert stops.shape == starts.shape

    def test_endpoints_in_range(self, small_community):
        starts = np.zeros(500, dtype=np.int64)
        stops = sample_walk_endpoints(small_community, starts, rng=1)
        assert stops.min() >= 0
        assert stops.max() < small_community.num_nodes

    def test_deterministic_with_seed(self, small_community):
        starts = np.zeros(100, dtype=np.int64)
        a = sample_walk_endpoints(small_community, starts, rng=42)
        b = sample_walk_endpoints(small_community, starts, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_high_restart_probability_stays_home(self, small_community):
        """With c close to 1 nearly every walk stops at its start."""
        starts = np.zeros(1000, dtype=np.int64)
        stops = sample_walk_endpoints(small_community, starts, c=0.99, rng=2)
        assert (stops == 0).mean() > 0.95

    def test_invalid_c(self, small_community):
        with pytest.raises(ParameterError):
            sample_walk_endpoints(small_community, np.zeros(1, dtype=np.int64), c=0.0)


class TestMonteCarloRWR:
    def test_distribution_sums_to_one(self, small_community):
        estimate = monte_carlo_rwr(small_community, 0, num_walks=1000, rng=0)
        assert estimate.sum() == pytest.approx(1.0)

    def test_unbiased_estimate(self, small_community):
        """MC stop frequencies approximate the exact RWR vector."""
        exact = rwr_direct(small_community, 5)
        estimate = monte_carlo_rwr(small_community, 5, num_walks=60_000, rng=3)
        # L1 error of an n-cell multinomial with 60k samples is modest.
        assert np.abs(exact - estimate).sum() < 0.25
        # The heavy hitters must be found.
        top_exact = set(np.argsort(-exact)[:10].tolist())
        top_mc = set(np.argsort(-estimate)[:10].tolist())
        assert len(top_exact & top_mc) >= 7

    def test_seed_gets_highest_mass(self, small_community):
        estimate = monte_carlo_rwr(small_community, 9, num_walks=20_000, rng=4)
        assert int(np.argmax(estimate)) == 9

    def test_requires_walks(self, small_community):
        with pytest.raises(ParameterError):
            monte_carlo_rwr(small_community, 0, num_walks=0)


class TestWalkIndex:
    def test_capacity_respected(self, small_community):
        capacity = np.zeros(small_community.num_nodes, dtype=np.int64)
        capacity[3] = 17
        capacity[5] = 4
        index = WalkIndex(small_community, capacity, rng=0)
        assert index.capacity(3) == 17
        assert index.capacity(5) == 4
        assert index.capacity(0) == 0
        assert index.total_walks == 21

    def test_endpoint_slicing(self, small_community):
        capacity = np.full(small_community.num_nodes, 3, dtype=np.int64)
        index = WalkIndex(small_community, capacity, rng=1)
        assert index.endpoints(7).size == 3
        assert index.endpoints(7, count=2).size == 2
        assert index.endpoints(7, count=99).size == 3

    def test_endpoints_valid_nodes(self, small_community):
        capacity = np.full(small_community.num_nodes, 2, dtype=np.int64)
        index = WalkIndex(small_community, capacity, rng=2)
        for node in (0, 10, 50):
            stops = index.endpoints(node)
            assert stops.min() >= 0
            assert stops.max() < small_community.num_nodes

    def test_nbytes_grows_with_capacity(self, small_community):
        small = WalkIndex(
            small_community,
            np.full(small_community.num_nodes, 1, dtype=np.int64),
            rng=0,
        )
        large = WalkIndex(
            small_community,
            np.full(small_community.num_nodes, 10, dtype=np.int64),
            rng=0,
        )
        assert large.nbytes() > small.nbytes()

    def test_zero_capacity_everywhere(self, small_community):
        index = WalkIndex(
            small_community,
            np.zeros(small_community.num_nodes, dtype=np.int64),
            rng=0,
        )
        assert index.total_walks == 0
        assert index.endpoints(0).size == 0

    def test_wrong_capacity_shape(self, small_community):
        with pytest.raises(ParameterError):
            WalkIndex(small_community, np.zeros(3, dtype=np.int64))

    def test_negative_capacity(self, small_community):
        capacity = np.zeros(small_community.num_nodes, dtype=np.int64)
        capacity[0] = -1
        with pytest.raises(ParameterError):
            WalkIndex(small_community, capacity)
