"""Unit tests for the NB_LIN baseline."""

import numpy as np
import pytest

from repro.baselines.nblin import NBLin
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(medium_community):
    method = NBLin(rank=150, seed=0)
    method.preprocess(medium_community)
    return method


class TestNBLin:
    def test_preprocessed_bytes_positive(self, prepared):
        assert prepared.preprocessed_bytes() > 0

    def test_reasonable_accuracy(self, prepared, medium_community):
        exact = rwr_direct(medium_community, 3)
        approx = prepared.query(3)
        # NB-LIN is the least accurate method in the paper; it should be
        # in the right ballpark but not exact.
        assert np.abs(exact - approx).sum() < 1.0

    def test_finds_top_candidates(self, prepared, medium_community):
        """NB_LIN is the paper's least accurate method (Figure 7); it
        should still place clearly better than chance on the top-50."""
        exact = rwr_direct(medium_community, 3)
        approx = prepared.query(3)
        chance = 50 / medium_community.num_nodes
        assert recall_at_k(exact, approx, 50) > 3 * chance

    def test_higher_rank_more_accurate(self, small_community):
        exact = rwr_direct(small_community, 0)
        errors = []
        for rank in (5, 120):
            method = NBLin(rank=rank, seed=0)
            method.preprocess(small_community)
            errors.append(np.abs(exact - method.query(0)).sum())
        assert errors[1] < errors[0]

    def test_full_rank_single_partition_is_exact(self):
        """With one partition the whole matrix lives in the block inverse,
        so NB_LIN degenerates to an exact solve."""
        from repro.graph.generators import community_graph

        graph = community_graph(80, avg_degree=5, seed=6)
        method = NBLin(num_partitions=1, rank=2, seed=0)
        method.preprocess(graph)
        exact = rwr_direct(graph, 7)
        np.testing.assert_allclose(method.query(7), exact, atol=1e-8)

    def test_memory_budget_enforced(self, medium_community):
        method = NBLin(memory_budget_bytes=1024, seed=0)
        with pytest.raises(MemoryBudgetExceeded):
            method.preprocess(medium_community)

    def test_drop_tolerance_shrinks_storage(self, small_community):
        dense = NBLin(drop_tolerance=0.0, seed=0)
        dense.preprocess(small_community)
        sparse = NBLin(drop_tolerance=0.05, seed=0)
        sparse.preprocess(small_community)
        # Dropping can only reduce the dense inverse nbytes... the arrays
        # stay dense, but the zeroed entries compress in the sparse parts;
        # at minimum it must not grow.
        assert sparse.preprocessed_bytes() <= dense.preprocessed_bytes()

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            NBLin(drop_tolerance=-1.0)
        with pytest.raises(ParameterError):
            NBLin(c=0.0)

    def test_deterministic(self, small_community):
        a = NBLin(rank=20, seed=1)
        a.preprocess(small_community)
        b = NBLin(rank=20, seed=1)
        b.preprocess(small_community)
        np.testing.assert_allclose(a.query(0), b.query(0))
