"""Unit tests for repro.ranking — PageRank and exact RWR references."""

import numpy as np
import pytest

from repro.core.cpi import cpi
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.ranking import pagerank, pagerank_power, rwr_direct, rwr_exact, rwr_power
from repro.ranking.rwr import rwr_matrix


class TestPageRank:
    def test_sums_to_one(self, small_community):
        scores = pagerank(small_community, tol=1e-12)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_cpi_and_power_agree(self, small_community):
        a = pagerank(small_community, tol=1e-12)
        b = pagerank_power(small_community, tol=1e-13)
        np.testing.assert_allclose(a, b, atol=1e-8)

    def test_uniform_on_ring(self, tiny_ring):
        """Perfect symmetry ⇒ uniform PageRank."""
        scores = pagerank(tiny_ring, tol=1e-12)
        np.testing.assert_allclose(scores, 1.0 / tiny_ring.num_nodes, atol=1e-9)

    def test_uniform_on_complete(self, tiny_complete):
        scores = pagerank(tiny_complete, tol=1e-12)
        np.testing.assert_allclose(scores, 1.0 / tiny_complete.num_nodes, atol=1e-9)

    def test_star_hub_dominates(self, tiny_star):
        scores = pagerank(tiny_star, tol=1e-12)
        assert scores[0] == scores.max()
        assert scores[0] > 0.3

    def test_in_degree_correlation(self, medium_community):
        """PageRank should broadly follow in-degree on these graphs."""
        scores = pagerank(medium_community)
        in_degree = medium_community.in_degree
        correlation = np.corrcoef(scores, in_degree)[0, 1]
        assert correlation > 0.7

    def test_invalid_c(self, small_community):
        with pytest.raises(ParameterError):
            pagerank_power(small_community, c=0.0)


class TestRWRMatrix:
    def test_solves_rwr(self, small_community):
        c = 0.15
        matrix = rwr_matrix(small_community, c)
        q = np.zeros(small_community.num_nodes)
        q[3] = c
        solution = np.linalg.solve(matrix.toarray(), q)
        reference = cpi(small_community, 3, c=c, tol=1e-13).scores
        np.testing.assert_allclose(solution, reference, atol=1e-9)

    def test_uniform_dangling_rejected(self, dangling_graph_uniform):
        with pytest.raises(ParameterError):
            rwr_matrix(dangling_graph_uniform)

    def test_invalid_c(self, small_community):
        with pytest.raises(ParameterError):
            rwr_matrix(small_community, c=1.5)


class TestExactRWR:
    def test_direct_and_power_agree(self, small_community):
        direct = rwr_direct(small_community, 7)
        power = rwr_power(small_community, 7, tol=1e-13)
        np.testing.assert_allclose(direct, power, atol=1e-9)

    def test_rwr_exact_dispatch_small(self, small_community):
        scores = rwr_exact(small_community, 7)
        np.testing.assert_allclose(scores, rwr_direct(small_community, 7))

    def test_rwr_exact_uniform_dangling_falls_back(self, dangling_graph_uniform):
        scores = rwr_exact(dangling_graph_uniform, 0)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_seed_ranks_first(self, small_community):
        scores = rwr_direct(small_community, 12)
        assert int(np.argmax(scores)) == 12

    def test_sums_to_one(self, small_community):
        assert rwr_direct(small_community, 0).sum() == pytest.approx(1.0)

    def test_restart_probability_mass_at_seed(self, tiny_ring):
        """On a directed ring, the seed keeps mass c/(1-(1-c)^n) · ... —
        at least c."""
        scores = rwr_direct(tiny_ring, 0, c=0.15)
        assert scores[0] >= 0.15

    def test_two_node_graph_closed_form(self):
        """0 <-> 1: r = c q + (1-c) swap(r) has a closed form."""
        graph = Graph(2, [0, 1], [1, 0])
        c = 0.15
        scores = rwr_direct(graph, 0, c=c)
        # r0 = c + (1-c) r1, r1 = (1-c) r0 => r0 = c / (1 - (1-c)^2).
        r0 = c / (1 - (1 - c) ** 2)
        assert scores[0] == pytest.approx(r0)
        assert scores[1] == pytest.approx((1 - c) * r0)
