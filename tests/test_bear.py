"""Unit tests for the BEAR-APPROX baseline."""

import numpy as np
import pytest

from repro.baselines.bear import BearApprox
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


class TestBearExact:
    def test_zero_drop_is_exact(self, small_community):
        """BEAR with drop tolerance 0 is an exact block-elimination solver."""
        method = BearApprox(drop_tolerance=0.0)
        method.preprocess(small_community)
        for seed in (0, 13, 250):
            exact = rwr_direct(small_community, seed)
            np.testing.assert_allclose(method.query(seed), exact, atol=1e-8)

    def test_zero_drop_exact_on_random_graph(self, random_gnm):
        method = BearApprox(drop_tolerance=0.0)
        method.preprocess(random_gnm)
        exact = rwr_direct(random_gnm, 5)
        np.testing.assert_allclose(method.query(5), exact, atol=1e-8)

    def test_zero_drop_exact_on_star(self, tiny_star):
        method = BearApprox(drop_tolerance=0.0)
        method.preprocess(tiny_star)
        exact = rwr_direct(tiny_star, 1)
        np.testing.assert_allclose(method.query(1), exact, atol=1e-10)


class TestBearApprox:
    def test_default_drop_keeps_recall(self, medium_community):
        method = BearApprox()
        method.preprocess(medium_community)
        exact = rwr_direct(medium_community, 9)
        approx = method.query(9)
        assert recall_at_k(exact, approx, 100) >= 0.9

    def test_drop_reduces_storage(self, medium_community):
        exact = BearApprox(drop_tolerance=0.0)
        exact.preprocess(medium_community)
        dropped = BearApprox(drop_tolerance=1e-2)
        dropped.preprocess(medium_community)
        assert dropped.preprocessed_bytes() < exact.preprocessed_bytes()

    def test_larger_drop_larger_error(self, medium_community):
        exact = rwr_direct(medium_community, 2)
        errors = []
        for drop in (1e-4, 5e-2):
            method = BearApprox(drop_tolerance=drop)
            method.preprocess(medium_community)
            errors.append(np.abs(exact - method.query(2)).sum())
        assert errors[0] < errors[1]

    def test_memory_budget_blocks_schur(self, medium_community):
        method = BearApprox(memory_budget_bytes=1000)
        with pytest.raises(MemoryBudgetExceeded):
            method.preprocess(medium_community)

    def test_preprocessed_bytes_positive(self, small_community):
        method = BearApprox()
        method.preprocess(small_community)
        assert method.preprocessed_bytes() > 0

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            BearApprox(drop_tolerance=-0.1)
        with pytest.raises(ParameterError):
            BearApprox(hub_ratio=0.0)
        with pytest.raises(ParameterError):
            BearApprox(c=1.0)

    def test_scores_localized_at_seed(self, medium_community):
        method = BearApprox()
        method.preprocess(medium_community)
        scores = method.query(77)
        assert int(np.argmax(scores)) == 77
