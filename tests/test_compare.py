"""Tests for the perf-regression gate (``benchmarks/compare.py``).

The gate is a script, not a package module — load it by path.  What
matters: a genuine throughput regression past the threshold exits 1, a
flat trajectory exits 0, an unmatched machine fingerprint is a loud
skip (exit 0, notice on stderr) rather than a silent pass, and the
committed trajectory itself gates clean.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "repro_bench_compare", REPO_ROOT / "benchmarks" / "compare.py"
)
compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare)


MACHINE = {
    "cpu_model": "TestCPU",
    "cpu_count": 4,
    "affinity": 4,
    "numa": 1,
    "cgroup_quota": None,
    "backend": "numpy",
    "dtype": "float64",
    "numba_version": None,
    "numpy_version": "1.26",
}


def entry(qps: float, latency_ms: float = 10.0, **overrides) -> dict:
    document = {
        "commit": "abc1234",
        "recorded_at": "2026-08-01T00:00:00Z",
        "backend": "numpy",
        "compute_dtype": "float64",
        "batch": 32,
        "graph": {"kind": "community", "nodes": 400, "edges": 2873,
                  "avg_degree": 8},
        "machine": dict(MACHINE),
        "queries_per_second": qps,
        "serving_p50_ms": latency_ms,
        "nodes": 400,  # ungated counter, must never appear as a metric
    }
    document.update(overrides)
    return document


def write_lines(path: Path, entries: list[dict]) -> Path:
    path.write_text(
        "".join(json.dumps(e) + "\n" for e in entries), encoding="utf-8"
    )
    return path


class TestGroupingAndDirections:
    def test_pre_fingerprint_entries_never_group(self):
        legacy = entry(100.0)
        del legacy["machine"]
        assert compare.group_key(legacy) is None

    def test_different_machevery_breaks_comparability(self):
        a = entry(100.0)
        b = entry(100.0)
        b["machine"] = dict(MACHINE, cpu_count=1)
        assert compare.group_key(a) != compare.group_key(b)
        c = entry(100.0, batch=64)
        assert compare.group_key(a) != compare.group_key(c)

    def test_metric_directions(self):
        assert compare.metric_direction("queries_per_second") == "higher"
        assert compare.metric_direction("kernel_spmm_speedup") == "higher"
        assert compare.metric_direction("serving_p99_ms") == "lower"
        assert compare.metric_direction("sharded_sweep_seconds") == "lower"
        assert compare.metric_direction("nodes") is None


class TestCompareEntry:
    def test_median_baseline_absorbs_one_noisy_run(self):
        pool = [entry(100.0), entry(101.0), entry(3.0), entry(99.0),
                entry(100.5)]
        result = compare.compare_entry(entry(95.0), pool)
        (qps,) = [
            row for row in result["metrics"]
            if row["metric"] == "queries_per_second"
        ]
        assert qps["baseline"] == 100.0  # median, not mean
        assert not qps["regressed"]

    def test_twenty_percent_throughput_drop_regresses(self):
        pool = [entry(100.0) for _ in range(5)]
        result = compare.compare_entry(entry(80.0), pool)
        assert result["fingerprint_matched"]
        names = [row["metric"] for row in result["regressions"]]
        assert "queries_per_second" in names

    def test_latency_direction_is_inverted(self):
        pool = [entry(100.0, latency_ms=10.0) for _ in range(3)]
        grew = compare.compare_entry(entry(100.0, latency_ms=13.0), pool)
        assert [r["metric"] for r in grew["regressions"]] == ["serving_p50_ms"]
        shrank = compare.compare_entry(entry(100.0, latency_ms=7.0), pool)
        assert shrank["regressions"] == []

    def test_unmatched_fingerprint_is_skip_not_pass(self):
        foreign = entry(50.0)
        foreign["machine"] = dict(MACHINE, cpu_model="OtherCPU")
        result = compare.compare_entry(entry(10.0), [foreign] * 5)
        assert result["fingerprint_matched"] is False
        assert result["metrics"] == []
        assert result["regressions"] == []

    def test_window_limits_the_baseline(self):
        pool = [entry(10.0)] * 10 + [entry(100.0)] * 3
        result = compare.compare_entry(entry(100.0), pool, window=3)
        (qps,) = [
            row for row in result["metrics"]
            if row["metric"] == "queries_per_second"
        ]
        assert qps["baseline"] == 100.0
        assert qps["baseline_entries"] == 3

    def test_ungated_fields_ignored(self):
        pool = [entry(100.0) for _ in range(3)]
        result = compare.compare_entry(entry(100.0, nodes=9999), pool)
        assert all(
            row["metric"] != "nodes" for row in result["metrics"]
        )


class TestMainExitCodes:
    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        trajectory = write_lines(
            tmp_path / "traj.json", [entry(100.0) for _ in range(5)]
        )
        candidate = write_lines(tmp_path / "fresh.json", [entry(80.0)])
        code = compare.main(
            ["--input", str(trajectory), "--candidate", str(candidate)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err
        assert "REGRESSED" in captured.out

    def test_flat_trajectory_exits_zero(self, tmp_path, capsys):
        trajectory = write_lines(
            tmp_path / "traj.json",
            [entry(100.0) for _ in range(5)] + [entry(99.0)],
        )
        code = compare.main(["--input", str(trajectory)])
        assert code == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_unmatched_fingerprint_notice(self, tmp_path, capsys):
        foreign = entry(100.0)
        foreign["machine"] = dict(MACHINE, cpu_model="OtherCPU")
        trajectory = write_lines(
            tmp_path / "traj.json", [foreign] * 4 + [entry(10.0)]
        )
        code = compare.main(["--input", str(trajectory)])
        captured = capsys.readouterr()
        assert code == 0
        assert "skipped" in captured.out
        assert "gate skipped" in captured.err

    def test_json_report_schema(self, tmp_path, capsys):
        trajectory = write_lines(
            tmp_path / "traj.json", [entry(100.0) for _ in range(4)]
        )
        candidate = write_lines(tmp_path / "fresh.json", [entry(70.0)])
        code = compare.main(
            ["--input", str(trajectory), "--candidate", str(candidate),
             "--json"]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == compare.COMPARE_SCHEMA
        assert report["candidates"] == 1
        assert report["matched"] == 1
        assert report["regressions"] >= 1
        (result,) = report["results"]
        assert any(
            row["metric"] == "queries_per_second" and row["regressed"]
            for row in result["metrics"]
        )

    def test_threshold_flag_loosens_the_gate(self, tmp_path):
        trajectory = write_lines(
            tmp_path / "traj.json", [entry(100.0) for _ in range(5)]
        )
        candidate = write_lines(tmp_path / "fresh.json", [entry(80.0)])
        code = compare.main(
            ["--input", str(trajectory), "--candidate", str(candidate),
             "--threshold", "0.5"]
        )
        assert code == 0

    def test_malformed_input_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "traj.json"
        bad.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        code = compare.main(["--input", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_empty_trajectory_exits_zero(self, tmp_path, capsys):
        empty = tmp_path / "traj.json"
        empty.write_text("", encoding="utf-8")
        assert compare.main(["--input", str(empty)]) == 0
        assert "nothing to gate" in capsys.readouterr().err

    @pytest.mark.skipif(
        not (REPO_ROOT / "BENCH_kernels.json").exists(),
        reason="no committed trajectory",
    )
    def test_committed_trajectory_gates_clean(self, capsys):
        assert compare.main([]) == 0
        capsys.readouterr()
