"""Unit tests for the BiPPR pair-PPR baseline."""

import numpy as np
import pytest

from repro.baselines.bippr import BiPPR
from repro.exceptions import ParameterError
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(small_community):
    method = BiPPR(seed=0, max_walks=40_000)
    method.preprocess(small_community)
    return method


class TestPairQueries:
    def test_pair_estimate_accurate_for_large_scores(self, prepared, small_community):
        source = 3
        exact = rwr_direct(small_community, source)
        # The seed's own score (>= c) is the easiest significant pair.
        estimate = prepared.query_pair(source, source)
        assert estimate == pytest.approx(exact[source], rel=0.15)

    def test_pair_estimates_track_top_targets(self, prepared, small_community):
        source = 3
        exact = rwr_direct(small_community, source)
        for target in np.argsort(-exact)[:5]:
            estimate = prepared.query_pair(source, int(target))
            assert estimate == pytest.approx(exact[target], abs=0.02)

    def test_insignificant_pair_small(self, prepared, small_community):
        source = 3
        exact = rwr_direct(small_community, source)
        target = int(np.argmin(exact))
        assert prepared.query_pair(source, target) < 0.02

    def test_pair_validation(self, prepared, small_community):
        with pytest.raises(ParameterError):
            prepared.query_pair(-1, 0)
        with pytest.raises(ParameterError):
            prepared.query_pair(0, small_community.num_nodes)


class TestWholeVectorAdapter:
    def test_whole_vector_topk(self, small_community):
        method = BiPPR(seed=0, max_walks=20_000, backward_rmax=5e-3)
        method.preprocess(small_community)
        from repro.metrics.accuracy import recall_at_k

        exact = rwr_direct(small_community, 7)
        approx = method.query(7)
        assert recall_at_k(exact, approx, 30) >= 0.8

    def test_no_index(self, prepared):
        assert prepared.preprocessed_bytes() == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"backward_rmax": 0.0},
            {"c": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            BiPPR(**kwargs)
