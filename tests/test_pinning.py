"""Tests for repro.tune.pinning and the fingerprint's topology readers.

The authoring container is typically single-core with no NUMA sysfs, so
every placement scenario here runs against fake topologies (tmp_path
sysfs trees, explicit ``topology=`` pools, monkeypatched ``os``
attributes).  The contract under test is the degradation one: every
environment where pinning cannot help yields unpinned execution with a
:class:`~repro.tune.PinningWarning` — never a crash, and never a result
change (the serving stack's bitwise tests in test_tune.py cover the
latter end to end).
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.tune import PinningWarning, cpu_topology, first_touch, pin_current, plan_pinning
from repro.tune.fingerprint import cgroup_cpu_quota, numa_nodes, parse_cpulist


def _fake_numa(tmp_path, nodes: dict[int, str]):
    """A sysfs-shaped directory: node<N>/cpulist files."""
    root = tmp_path / "node"
    for node_id, cpulist in nodes.items():
        node_dir = root / f"node{node_id}"
        node_dir.mkdir(parents=True)
        (node_dir / "cpulist").write_text(cpulist + "\n")
    return str(root)


class TestCpulistParsing:
    def test_ranges_and_singles(self):
        assert parse_cpulist("0-3,8-11") == (0, 1, 2, 3, 8, 9, 10, 11)
        assert parse_cpulist("5") == (5,)
        assert parse_cpulist("2,0,1") == (0, 1, 2)

    def test_whitespace_and_duplicates(self):
        assert parse_cpulist(" 0-1, 1 ,\n") == (0, 1)
        assert parse_cpulist("") == ()


class TestNumaNodes:
    def test_reads_fake_sysfs(self, tmp_path):
        sysfs = _fake_numa(tmp_path, {0: "0-1", 1: "2-3"})
        assert numa_nodes(sysfs) == {0: (0, 1), 1: (2, 3)}

    def test_missing_sysfs_is_empty(self, tmp_path):
        assert numa_nodes(str(tmp_path / "absent")) == {}

    def test_non_node_entries_ignored(self, tmp_path):
        sysfs = _fake_numa(tmp_path, {0: "0"})
        (tmp_path / "node" / "possible").write_text("0\n")
        assert numa_nodes(sysfs) == {0: (0,)}


class TestCgroupQuota:
    def test_v2_quota(self, tmp_path):
        (tmp_path / "cpu.max").write_text("150000 100000\n")
        assert cgroup_cpu_quota(str(tmp_path)) == pytest.approx(1.5)

    def test_v2_unlimited(self, tmp_path):
        (tmp_path / "cpu.max").write_text("max 100000\n")
        assert cgroup_cpu_quota(str(tmp_path)) is None

    def test_v1_quota(self, tmp_path):
        cpu = tmp_path / "cpu"
        cpu.mkdir()
        (cpu / "cpu.cfs_quota_us").write_text("200000\n")
        (cpu / "cpu.cfs_period_us").write_text("100000\n")
        assert cgroup_cpu_quota(str(tmp_path)) == pytest.approx(2.0)

    def test_v1_unlimited(self, tmp_path):
        cpu = tmp_path / "cpu"
        cpu.mkdir()
        (cpu / "cpu.cfs_quota_us").write_text("-1\n")
        (cpu / "cpu.cfs_period_us").write_text("100000\n")
        assert cgroup_cpu_quota(str(tmp_path)) is None

    def test_no_cgroup_files(self, tmp_path):
        assert cgroup_cpu_quota(str(tmp_path)) is None


class TestCpuTopology:
    def test_groups_by_node_restricted_to_affinity(self, tmp_path):
        sysfs = _fake_numa(tmp_path, {0: "0-3", 1: "4-7"})
        pools = cpu_topology(sysfs, affinity=[0, 1, 4, 5, 6])
        assert pools == [(0, 1), (4, 5, 6)]

    def test_node_with_no_allowed_cpus_dropped(self, tmp_path):
        sysfs = _fake_numa(tmp_path, {0: "0-3", 1: "4-7"})
        assert cpu_topology(sysfs, affinity=[4, 5]) == [(4, 5)]

    def test_no_sysfs_falls_back_to_single_pool(self, tmp_path):
        pools = cpu_topology(str(tmp_path / "absent"), affinity=[3, 1, 2])
        assert pools == [(1, 2, 3)]


class TestPlanPinning:
    def test_spreads_across_numa_nodes(self):
        plan = plan_pinning(2, topology=[(0, 1), (2, 3)])
        assert plan is not None
        assert sorted(map(sorted, plan)) == [[0, 1], [2, 3]]

    def test_disjoint_sets_cover_one_cpu_minimum(self):
        plan = plan_pinning(4, topology=[(0, 1), (2, 3)])
        assert plan is not None
        flat = [c for cpus in plan for c in cpus]
        assert len(flat) == len(set(flat))  # disjoint
        assert all(len(cpus) >= 1 for cpus in plan)

    def test_cpus_per_worker_cap(self):
        plan = plan_pinning(1, cpus_per_worker=2, topology=[(0, 1, 2, 3)])
        assert plan == [(0, 1)]

    def test_worker_sets_stay_within_one_node(self):
        plan = plan_pinning(2, topology=[(0, 1, 2), (3, 4, 5)])
        assert plan is not None
        for cpus in plan:
            assert set(cpus) <= {0, 1, 2} or set(cpus) <= {3, 4, 5}

    def test_no_sched_setaffinity_degrades(self, monkeypatch):
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        with pytest.warns(PinningWarning, match="no sched_setaffinity"):
            assert plan_pinning(2, topology=[(0, 1), (2, 3)]) is None

    def test_mask_smaller_than_workers_degrades(self):
        with pytest.warns(PinningWarning, match="cannot pin 4 workers"):
            assert plan_pinning(4, topology=[(0,), (1,)]) is None

    def test_empty_topology_degrades(self):
        with pytest.warns(PinningWarning):
            assert plan_pinning(1, topology=[()]) is None

    def test_zero_workers_rejected(self):
        with pytest.raises(ParameterError):
            plan_pinning(0)


class TestPinCurrent:
    def test_pin_to_current_affinity_succeeds(self):
        if not hasattr(os, "sched_setaffinity"):
            pytest.skip("platform cannot pin")
        current = os.sched_getaffinity(0)
        try:
            assert pin_current(current) is True
        finally:
            os.sched_setaffinity(0, current)

    def test_cgroup_restricted_cpu_degrades(self):
        # A cpu id outside the allowed set (cgroup cpuset / machine
        # size): the kernel rejects it, we warn and keep running.
        if not hasattr(os, "sched_setaffinity"):
            pytest.skip("platform cannot pin")
        with pytest.warns(PinningWarning, match="could not pin"):
            assert pin_current({99999}) is False

    def test_no_setter_degrades(self, monkeypatch):
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        with pytest.warns(PinningWarning, match="no sched_setaffinity"):
            assert pin_current({0}) is False


class TestFirstTouch:
    def test_touches_one_element_per_page(self):
        array = np.zeros(4096, dtype=np.float64)  # 32 KiB = 8 pages
        assert first_touch(array) == 8

    def test_multiple_and_empty_arrays(self):
        a = np.zeros(512, dtype=np.float64)  # exactly one page
        assert first_touch(a, np.empty(0), a) == 2

    def test_never_mutates(self):
        array = np.arange(2048, dtype=np.float64)
        before = array.copy()
        first_touch(array)
        np.testing.assert_array_equal(array, before)

    def test_non_contiguous_input(self):
        array = np.arange(4096, dtype=np.float64)[::2]
        assert first_touch(array) > 0


class TestServingDegradesNotCrashes:
    """pin=True on a machine that cannot satisfy it must serve anyway."""

    def test_server_oversubscribed_pin(self, small_community):
        from repro import Server, create_method

        workers = len(os.sched_getaffinity(0)) + 1 if hasattr(
            os, "sched_getaffinity") else 2
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with Server(
                create_method("tpa", s_iteration=4, t_iteration=8),
                small_community,
                workers=workers,
                pin=True,
            ) as server:
                assert server.stats()["pinning"] is None
                result = server.query(0, k=5)
        assert result.top_nodes.shape == (5,)

    def test_sharded_engine_oversubscribed_pin(self, small_community):
        from repro import Engine, create_method

        shards = len(os.sched_getaffinity(0)) + 1 if hasattr(
            os, "sched_getaffinity") else 2
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            small_community,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PinningWarning)
            with engine.shard(num_shards=shards, pin=True) as sharded:
                assert sharded.stats()["shards"]["pinning"] is None
                out = sharded.serve([0, 1, 2], k=5)
        np.testing.assert_array_equal(out, engine.serve([0, 1, 2], k=5))
