"""Tests for the resilience layer (repro.resilience) and its wiring.

The load-bearing guarantee extends the serving/sharding suites': under
injected chaos — worker kills before/mid/after a sweep, poisoned
batches, delayed and dropped replies, hung shutdowns, dead server
threads — every request either completes **bitwise identical** to an
undisturbed serial run or fails with a *typed* error
(:class:`DeadlineExceeded`, :class:`ServerOverloaded`,
:class:`WorkerFailure`).  Nothing hangs, no worker process leaks, and
no ``/dev/shm`` segment outlives its owner.

Fault injection is deterministic (seed/occurrence driven, see
:mod:`repro.resilience.faults`), so every chaos test here is exactly
reproducible — a flaky kill would be a flaky test.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro import community_graph, create_method, kernels
from repro.dynamic import DynamicGraph
from repro.engine import Engine, QueryRequest
from repro.exceptions import (
    DeadlineExceeded,
    ParameterError,
    ServerOverloaded,
    WorkerFailure,
)
from repro.resilience import faults, reaper
from repro.resilience.faults import FaultClause, FaultPlan
from repro.resilience.retry import RetryPolicy, call_with_retry, is_retryable
from repro.resilience.supervisor import (
    Supervisor,
    heartbeat_interval_ms,
    missed_beat_threshold,
)
from repro.serving import LatencyStats, Server
from repro.serving.loadgen import run_closed_loop
from repro.serving.scheduler import PendingRequest
from repro.serving.server import dispatch_batch
from repro.sharding import Router, ShardPlan, ShardedOperator


@pytest.fixture(autouse=True)
def clean_fault_state():
    """Every test leaves the process's fault plan as it found it: unset,
    re-reading the (restored) environment on the next ``fire``."""
    yield
    faults.reset_fault_plan()
    faults.set_scope("main", 0)


@pytest.fixture
def fork_numpy():
    """Force the NumPy backend so shard workers fork (fast startup) —
    the chaos scenarios exercise the protocol, not the kernels."""
    previous = kernels.get_backend()
    kernels.set_backend("numpy")
    yield "numpy"
    kernels.set_backend(previous)


@pytest.fixture(scope="module")
def chaos_graph():
    return community_graph(240, avg_degree=6, seed=11)


def inject(monkeypatch, spec: str) -> None:
    """Arm ``spec`` for this process *and* future worker processes."""
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, spec)
    faults.reset_fault_plan()


def assert_store_released(names) -> None:
    """The store's segments are gone and nothing reapable remains."""
    for name in names:
        assert not os.path.exists("/dev/shm/" + name.lstrip("/")), name
    assert reaper.reap_orphan_segments() == []


def wait_until(predicate, timeout: float = 10.0, what: str = "condition"):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {what}")


# -- fault spec parsing and firing ---------------------------------------------


class TestFaultSpec:
    def test_occurrence_forms(self):
        plan = FaultPlan.from_spec("a@3; b@3+; c@2-5; d")
        by_point = {clause.point: clause for clause in plan.clauses}
        assert (by_point["a"].first, by_point["a"].last) == (3, 3)
        assert (by_point["b"].first, by_point["b"].last) == (3, None)
        assert (by_point["c"].first, by_point["c"].last) == (2, 5)
        assert (by_point["d"].first, by_point["d"].last) == (1, None)

    def test_parameters(self):
        plan = FaultPlan.from_spec(
            "delay_reply@2:ms=50,scope=shard1,gen=2,p=0.5,seed=9"
        )
        (clause,) = plan.clauses
        assert clause == FaultClause(
            point="delay_reply",
            first=2,
            last=2,
            probability=0.5,
            seed=9,
            scope="shard1",
            generation=2,
            params=(("ms", "50"),),
        )
        assert clause.param_dict() == {"ms": "50"}

    @pytest.mark.parametrize(
        "spec",
        ["@2", "boom@x", "boom@1-x", "boom:ms50", "boom:p=maybe", "boom:gen=x"],
    )
    def test_bad_specs(self, spec):
        with pytest.raises(ParameterError):
            FaultPlan.from_spec(spec)

    def test_occurrence_window_fires(self):
        plan = FaultPlan.from_spec("p@2-3")
        outcomes = [plan.fire("p", "main", 0) for _ in range(4)]
        assert outcomes[0] is None and outcomes[3] is None
        assert outcomes[1]["visit"] == "2"
        assert outcomes[2]["visit"] == "3"

    def test_scope_filter(self):
        plan = FaultPlan.from_spec("kill:scope=shard1")
        assert plan.fire("kill", "main", 0) is None
        assert plan.fire("kill", "shard0", 0) is None
        assert plan.fire("kill", "shard1", 0) is not None

    def test_generation_filter(self):
        plan = FaultPlan.from_spec("kill:gen=0")
        assert plan.fire("kill", "shard1", 1) is None
        assert plan.fire("kill", "shard1", 0) is not None

    def test_probabilistic_firing_is_deterministic(self):
        spec = "flake:p=0.5,seed=3"
        first = FaultPlan.from_spec(spec)
        second = FaultPlan.from_spec(spec)
        pattern = [
            first.fire("flake", "main", 0) is not None for _ in range(32)
        ]
        assert pattern == [
            second.fire("flake", "main", 0) is not None for _ in range(32)
        ]
        assert 0 < sum(pattern) < 32  # actually probabilistic

    def test_module_fire_reads_environment(self, monkeypatch):
        inject(monkeypatch, "boom@2")
        assert faults.fire("boom") is None
        assert faults.fire("boom") is not None
        faults.set_fault_plan(None)  # disables even the env spec
        assert faults.fire("boom") is None

    def test_fire_delay_sleeps_ms_param(self):
        faults.set_fault_plan("slow@1:ms=20")
        begin = time.perf_counter()
        faults.fire_delay("slow")
        assert time.perf_counter() - begin >= 0.015
        begin = time.perf_counter()
        faults.fire_delay("slow")  # visit 2: no longer fires
        assert time.perf_counter() - begin < 0.015


# -- retry policy --------------------------------------------------------------


class TestRetry:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff_ms=-1.0)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter=-0.1)

    def test_delays_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_ms=10.0, multiplier=2.0, jitter=0.5,
            max_backoff_ms=35.0, seed=5,
        )
        first = [policy.delay_ms(i, policy.rng()) for i in range(4)]
        second = [policy.delay_ms(i, policy.rng()) for i in range(4)]
        assert first == second
        for attempt, delay in enumerate(first):
            base = min(10.0 * 2.0 ** attempt, 35.0)
            assert base <= delay <= base * 1.5

    def test_exact_delays_without_jitter(self):
        policy = RetryPolicy(backoff_ms=10.0, jitter=0.0, max_backoff_ms=25.0)
        rng = policy.rng()
        assert [policy.delay_ms(i, rng) for i in range(3)] == [10.0, 20.0, 25.0]

    def test_is_retryable(self):
        assert is_retryable(ServerOverloaded(8, 8))
        assert is_retryable(WorkerFailure(0, "died"))
        assert not is_retryable(DeadlineExceeded(5.0, 7.0))
        assert not is_retryable(ValueError("plain bug"))

    def test_succeeds_after_retryable_failures(self):
        failures = [ServerOverloaded(8, 8), ServerOverloaded(8, 8)]
        retried, slept = [], []

        def flaky():
            if failures:
                raise failures.pop()
            return 42

        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=3, backoff_ms=1.0, jitter=0.0),
            on_retry=lambda error, delay_ms: retried.append(delay_ms),
            sleep=slept.append,
        )
        assert result == 42
        assert retried == [1.0, 2.0]
        assert slept == [0.001, 0.002]

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ParameterError("nope")

        with pytest.raises(ParameterError):
            call_with_retry(broken, RetryPolicy(max_attempts=5), sleep=lambda s: None)
        assert len(calls) == 1

    def test_exhaustion_raises_last_failure(self):
        calls = []

        def always():
            calls.append(1)
            raise WorkerFailure(1, "died")

        with pytest.raises(WorkerFailure):
            call_with_retry(
                always,
                RetryPolicy(max_attempts=3, backoff_ms=0.0, jitter=0.0),
                sleep=lambda s: None,
            )
        assert len(calls) == 3


# -- typed failures ------------------------------------------------------------


class TestTypedFailures:
    def test_deadline_exceeded_fields_and_pickle(self):
        error = DeadlineExceeded(5.0, 7.25)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.deadline_ms, clone.waited_ms) == (5.0, 7.25)
        assert error.retryable is False

    def test_worker_failure_fields_and_pickle(self):
        error = WorkerFailure(2, "timeout", "no reply")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.shard, clone.kind, clone.detail) == (2, "timeout", "no reply")
        assert isinstance(error, RuntimeError)  # pre-resilience contract
        assert error.retryable is True


# -- orphan segment reaper -----------------------------------------------------


def _dead_pid() -> int:
    pid = 299_999
    while reaper.pid_alive(pid):  # pragma: no cover - crowded pid space
        pid -= 1
    return pid


class TestReaper:
    def test_owned_name_roundtrip(self):
        name = reaper.owned_segment_name()
        assert reaper.owner_pid(name) == os.getpid()
        assert reaper.owner_pid("psm_deadbeef") is None
        assert reaper.owner_pid("repro-shm-12-notahex!") is None

    def test_reaps_only_dead_owners(self, tmp_path):
        dead = tmp_path / f"repro-shm-{_dead_pid()}-abc123"
        alive = tmp_path / f"repro-shm-{os.getpid()}-abc123"
        foreign = tmp_path / "psm_someone_elses"
        for path in (dead, alive, foreign):
            path.write_bytes(b"x")
        reaped = reaper.reap_orphan_segments(str(tmp_path))
        assert reaped == [dead.name]
        assert not dead.exists()
        assert alive.exists() and foreign.exists()

    def test_missing_directory_is_noop(self):
        assert reaper.reap_orphan_segments("/no/such/dir") == []


# -- the generic supervisor ----------------------------------------------------


class TestSupervisor:
    def test_probe_repair_counters(self):
        broken, repaired = [7], []

        def repair(identity):
            repaired.append(identity)
            broken.clear()

        supervisor = Supervisor(lambda: list(broken), repair, interval_ms=10)
        try:
            wait_until(lambda: repaired, what="repair")
        finally:
            supervisor.close()
        stats = supervisor.stats()
        assert repaired == [7]
        assert stats["probes"] >= 1
        assert stats["detected"] >= 1
        assert stats["repairs"] >= 1
        assert stats["repair_failures"] == 0

    def test_failed_repair_counted_and_loop_survives(self):
        attempts = []

        def repair(identity):
            attempts.append(identity)
            if len(attempts) == 1:
                raise RuntimeError("injected repair failure")

        supervisor = Supervisor(lambda: [0], repair, interval_ms=10)
        try:
            wait_until(lambda: len(attempts) >= 2, what="second repair")
        finally:
            supervisor.close()
        stats = supervisor.stats()
        assert stats["repair_failures"] >= 1
        assert stats["repairs"] >= 1

    def test_close_is_idempotent(self):
        supervisor = Supervisor(lambda: (), lambda i: None, interval_ms=10)
        supervisor.close()
        supervisor.close()
        assert supervisor.closed

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "25")
        monkeypatch.setenv("REPRO_HEARTBEAT_MISSES", "2")
        assert heartbeat_interval_ms() == 25.0
        assert missed_beat_threshold() == 2
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "-5")  # floored
        monkeypatch.setenv("REPRO_HEARTBEAT_MISSES", "0")
        assert heartbeat_interval_ms() == 10.0
        assert missed_beat_threshold() == 1
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "junk")  # defaulted
        assert heartbeat_interval_ms() == 1000.0


# -- deadlines -----------------------------------------------------------------


class TestDeadlines:
    def test_expired_requests_fail_fast_typed(self, chaos_graph):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8), chaos_graph
        )
        metrics = LatencyStats()
        now = time.perf_counter()
        expired = PendingRequest(
            request=QueryRequest(seed=0, k=5, deadline_ms=1.0),
            submitted_at=now - 0.1,
            deadline_at=now - 0.099,
        )
        live = PendingRequest(
            request=QueryRequest(seed=1, k=5), submitted_at=now
        )
        dispatch_batch(engine, metrics, [expired, live])
        with pytest.raises(DeadlineExceeded) as excinfo:
            expired.future.result(timeout=0)
        assert excinfo.value.deadline_ms == 1.0
        assert excinfo.value.waited_ms >= 0.0
        # The batch that started in time still completes, bitwise equal
        # to a serial run of the same request.
        (expected,) = engine.batch([live.request])
        result = live.future.result(timeout=0)
        np.testing.assert_array_equal(expected.top_nodes, result.top_nodes)
        assert metrics.snapshot()["deadlines_exceeded"] == 1

    def test_server_enforces_request_deadline(self, chaos_graph):
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with Server(method, chaos_graph, workers=1, supervise=False) as server:
            future = server.submit(
                QueryRequest(seed=0, k=5, deadline_ms=0.0)
            )
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)
            assert server.stats()["deadlines_exceeded"] >= 1
            # Undeadlined traffic is unaffected.
            assert server.query(1, k=5).top_nodes is not None


# -- dispatch retry ------------------------------------------------------------


class _FlakyEngine:
    """Engine stand-in whose first ``failures`` batches die retryably."""

    def __init__(self, engine, failures: int):
        self._engine = engine
        self._failures = failures

    def batch(self, requests):
        if self._failures > 0:
            self._failures -= 1
            raise WorkerFailure(0, "died", "injected")
        return self._engine.batch(requests)


class TestDispatchRetry:
    def test_retryable_batch_failures_are_absorbed(self, chaos_graph):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8), chaos_graph
        )
        metrics = LatencyStats()
        pending = PendingRequest(
            request=QueryRequest(seed=0, k=5),
            submitted_at=time.perf_counter(),
        )
        dispatch_batch(
            _FlakyEngine(engine, failures=2),
            metrics,
            [pending],
            retry=RetryPolicy(max_attempts=3, backoff_ms=0.0, jitter=0.0),
        )
        (expected,) = engine.batch([pending.request])
        result = pending.future.result(timeout=0)
        np.testing.assert_array_equal(expected.top_nodes, result.top_nodes)
        snapshot = metrics.snapshot()
        assert snapshot["retries"] == 2
        assert snapshot["failures"] == 0

    def test_exhausted_retries_fail_every_future(self, chaos_graph):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8), chaos_graph
        )
        metrics = LatencyStats()
        batch = [
            PendingRequest(
                request=QueryRequest(seed=seed, k=5),
                submitted_at=time.perf_counter(),
            )
            for seed in range(3)
        ]
        dispatch_batch(
            _FlakyEngine(engine, failures=99),
            metrics,
            batch,
            retry=RetryPolicy(max_attempts=2, backoff_ms=0.0, jitter=0.0),
        )
        for pending in batch:
            with pytest.raises(WorkerFailure):
                pending.future.result(timeout=0)
        snapshot = metrics.snapshot()
        assert snapshot["failures"] == 3
        assert snapshot["retries"] == 1


# -- server thread supervision -------------------------------------------------


class TestServerSupervision:
    def test_crashed_worker_thread_is_revived(self, chaos_graph):
        faults.set_fault_plan("server_worker_crash@1")
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        with Server(
            method, chaos_graph, workers=2, heartbeat_ms=20
        ) as server:
            wait_until(
                lambda: server.stats()["respawns"] >= 1,
                what="thread revival",
            )
            faults.set_fault_plan(None)
            # The revived pool still serves, identically to a serial run.
            (expected,) = server.engine.batch([QueryRequest(seed=3, k=5)])
            result = server.query(3, k=5)
            np.testing.assert_array_equal(expected.top_nodes, result.top_nodes)


# -- load generator: bounded retry and deadline accounting ---------------------


class _StubServer:
    """Scheduler-surface stub: scripted rejections, scripted results."""

    def __init__(self, rejections: int = 0, error: Exception | None = None):
        self._rejections = rejections
        self._error = error
        self.submissions = 0

    def submit(self, request):
        self.submissions += 1
        if self._rejections > 0:
            self._rejections -= 1
            raise ServerOverloaded(1, 1)
        future = Future()
        if self._error is not None:
            future.set_exception(self._error)
        else:
            future.set_result(object())
        return future

    def stats(self):
        return {}


class TestLoadgenResilience:
    POLICY = RetryPolicy(max_attempts=3, backoff_ms=0.0, jitter=0.0)

    def test_bounded_retry_recovers(self):
        server = _StubServer(rejections=2)
        report = run_closed_loop(
            server, seeds=[0, 1, 2], clients=1, requests_per_client=3,
            retry=self.POLICY,
        )
        assert report.requests == 3
        assert report.retries == 2
        assert report.rejected == 2

    def test_bounded_retry_abandons_after_max_attempts(self):
        server = _StubServer(rejections=10**9)
        report = run_closed_loop(
            server, seeds=[0, 1, 2], clients=1, requests_per_client=3,
            retry=self.POLICY,
        )
        assert report.requests == 0
        # Per request: two absorbed backoffs, then the abandoning
        # rejection — all three land in ``rejected``.
        assert report.retries == 6
        assert report.rejected == 9
        assert server.submissions == 9

    def test_deadline_misses_tallied_apart_from_errors(self):
        report = run_closed_loop(
            _StubServer(error=DeadlineExceeded(1.0, 2.0)),
            seeds=[0], clients=1, requests_per_client=4,
            retry=self.POLICY,
        )
        assert report.deadlines_exceeded == 4
        assert report.errors == 0
        report = run_closed_loop(
            _StubServer(error=RuntimeError("boom")),
            seeds=[0], clients=1, requests_per_client=4,
            retry=self.POLICY,
        )
        assert report.errors == 4
        assert report.deadlines_exceeded == 0


# -- sharded chaos: the operator under injected process faults -----------------


def _operator(graph, **kwargs) -> ShardedOperator:
    kwargs.setdefault("supervise", False)
    return ShardedOperator(
        graph, ShardPlan.uniform(graph.num_nodes, 2), **kwargs
    )


def _panel(graph) -> np.ndarray:
    rng = np.random.default_rng(17)
    x = rng.random((graph.num_nodes, 3))
    return x / x.sum(axis=0)


class TestShardChaos:
    """Injected process faults against the live sweep protocol.

    Every scenario asserts the full contract: the propagate result is
    bitwise identical to the undisturbed in-process operator, the
    failure was recovered the intended way (respawn vs in-place retry),
    and close() releases every shared-memory segment.
    """

    @pytest.mark.parametrize(
        "point", ["kill_before_sweep", "kill_mid_sweep"]
    )
    def test_kill_during_sweep_recovers_bitwise(
        self, chaos_graph, fork_numpy, monkeypatch, point
    ):
        # Visit 1 is the construction-time warm probe; the kill lands on
        # the first real sweep.  gen=0 keeps the respawned worker (whose
        # visit counter restarts) from being re-killed.
        inject(monkeypatch, f"{point}@2:scope=shard1,gen=0")
        x = _panel(chaos_graph)
        expected = chaos_graph.propagate(x)
        operator = _operator(chaos_graph)
        names = list(operator._store.segment_names)
        try:
            np.testing.assert_array_equal(operator.propagate(x), expected)
            stats = operator.shard_stats()
            assert stats["respawns"] == 1
            assert stats["sweep_retries"] >= 1
            assert stats["generations"] == [0, 1]
            # The deployment keeps serving on the replacement worker.
            np.testing.assert_array_equal(operator.propagate(x), expected)
        finally:
            operator.close()
        assert_store_released(names)

    def test_kill_after_sweep_detected_on_next(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "kill_after_sweep@2:scope=shard0,gen=0")
        x = _panel(chaos_graph)
        expected = chaos_graph.propagate(x)
        operator = _operator(chaos_graph)
        names = list(operator._store.segment_names)
        try:
            # The killed worker replied first, so this sweep is clean...
            np.testing.assert_array_equal(operator.propagate(x), expected)
            # ...and the next one finds the corpse and respawns inline.
            np.testing.assert_array_equal(operator.propagate(x), expected)
            assert operator.shard_stats()["respawns"] == 1
        finally:
            operator.close()
        assert_store_released(names)

    def test_slow_reply_within_timeout_tolerated(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "delay_reply@2:ms=40,scope=shard1")
        x = _panel(chaos_graph)
        expected = chaos_graph.propagate(x)
        operator = _operator(chaos_graph)
        names = list(operator._store.segment_names)
        try:
            np.testing.assert_array_equal(operator.propagate(x), expected)
            assert operator.shard_stats()["respawns"] == 0
        finally:
            operator.close()
        assert_store_released(names)

    def test_hung_worker_times_out_and_respawns(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "delay_reply@2:ms=30000,scope=shard1,gen=0")
        x = _panel(chaos_graph)
        expected = chaos_graph.propagate(x)
        operator = _operator(chaos_graph, step_timeout=0.5)
        names = list(operator._store.segment_names)
        try:
            np.testing.assert_array_equal(operator.propagate(x), expected)
            stats = operator.shard_stats()
            assert stats["respawns"] == 1
            assert stats["generations"] == [0, 1]
        finally:
            operator.close()
        assert_store_released(names)

    def test_poisoned_batch_retries_without_respawn(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "poison_batch@2:scope=shard0")
        x = _panel(chaos_graph)
        expected = chaos_graph.propagate(x)
        operator = _operator(chaos_graph)
        names = list(operator._store.segment_names)
        try:
            np.testing.assert_array_equal(operator.propagate(x), expected)
            stats = operator.shard_stats()
            # An "error" reply means the process is healthy: the sweep
            # retried in place, no respawn.
            assert stats["respawns"] == 0
            assert stats["sweep_retries"] == 1
        finally:
            operator.close()
        assert_store_released(names)

    def test_persistent_poison_raises_typed_after_bounded_retries(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "poison_batch@2+:scope=shard0")
        operator = _operator(chaos_graph)
        names = list(operator._store.segment_names)
        try:
            with pytest.raises(WorkerFailure) as excinfo:
                operator.propagate(_panel(chaos_graph))
            assert excinfo.value.kind == "error"
        finally:
            operator.close()
        assert_store_released(names)

    def test_supervisor_respawns_idle_death(
        self, chaos_graph, fork_numpy
    ):
        x = _panel(chaos_graph)
        expected = chaos_graph.propagate(x)
        operator = _operator(chaos_graph, supervise=True, heartbeat_ms=25)
        names = list(operator._store.segment_names)
        try:
            os.kill(operator.workers()[1].pid, signal.SIGKILL)
            # No sweep is running: only the heartbeat can notice.
            wait_until(
                lambda: operator.shard_stats()["respawns"] >= 1,
                what="supervisor respawn",
            )
            np.testing.assert_array_equal(operator.propagate(x), expected)
            supervisor = operator.shard_stats()["supervisor"]
            assert supervisor["repairs"] >= 1
        finally:
            operator.close()
        assert_store_released(names)

    def test_hang_on_stop_escalates_to_kill(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "hang_on_stop:scope=shard0,seconds=30")
        operator = _operator(chaos_graph)
        names = list(operator._store.segment_names)
        worker = operator.workers()[0]
        begin = time.perf_counter()
        worker.stop(timeout=0.3)
        # stop → (ignored) SIGTERM → SIGKILL, well under the 30 s hang.
        assert time.perf_counter() - begin < 10.0
        assert not worker.alive
        operator.close()
        assert_store_released(names)

    def test_dropped_remap_ack_respawns_onto_new_store(
        self, chaos_graph, fork_numpy, monkeypatch
    ):
        inject(monkeypatch, "drop_remap_ack@1:scope=shard1,gen=0")
        dynamic = DynamicGraph(chaos_graph)
        operator = ShardedOperator(
            dynamic,
            ShardPlan.uniform(dynamic.num_nodes, 2),
            supervise=False,
            step_timeout=1.0,
        )
        old_names = list(operator._store.segment_names)
        new_names: list = []
        try:
            assert dynamic.add_edges([(0, 50), (3, 97), (120, 7)]) > 0
            dynamic.compact()
            x = _panel(dynamic)
            expected = dynamic.propagate(x)
            # The republish remap loses shard 1's ack; recovery respawns
            # it bound directly to the republished store.
            np.testing.assert_array_equal(operator.propagate(x), expected)
            stats = operator.shard_stats()
            assert stats["respawns"] == 1
            assert stats["republishes"] == 1
            new_names = list(operator._store.segment_names)
            assert new_names != old_names
        finally:
            operator.close()
        assert_store_released(old_names)
        assert_store_released(new_names)


# -- end to end: Router under chaos --------------------------------------------


class TestRouterChaos:
    def test_worker_kill_mid_batch_bitwise_and_counted(
        self, chaos_graph, monkeypatch
    ):
        # CPI drives a real multi-iteration sweep per batch through the
        # shard workers (TPA's online phase answers small graphs from
        # the in-memory CSR without touching the operator).  warm=False
        # so the kill's visit window lands inside client traffic.
        inject(monkeypatch, "kill_mid_sweep@5:scope=shard1,gen=0")
        requests = [
            QueryRequest(seed=seed, k=8) if seed % 3 else QueryRequest(seed=seed)
            for seed in range(12)
        ]
        reference = Engine(create_method("cpi"), chaos_graph).batch(requests)
        router = Router(
            create_method("cpi"),
            chaos_graph,
            num_shards=2,
            max_batch=16,
            warm=False,
            step_timeout=60.0,
        )
        names = list(router.engine.shards._store.segment_names)
        try:
            results = router.batch(requests, timeout=120)
            for expected, actual in zip(reference, results):
                if expected.scores is not None:
                    np.testing.assert_array_equal(
                        expected.scores, actual.scores
                    )
                else:
                    np.testing.assert_array_equal(
                        expected.top_nodes, actual.top_nodes
                    )
                    np.testing.assert_array_equal(
                        expected.top_scores, actual.top_scores
                    )
            stats = router.stats()
            assert stats["respawns"] >= 1
            assert stats["failures"] == 0
        finally:
            router.close()
        assert_store_released(names)
