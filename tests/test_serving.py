"""Tests for the concurrent serving subsystem (repro.serving).

The load-bearing guarantee is *equivalence*: concurrency must never
change scores or rankings.  Every concurrent path is checked bitwise
against a serial ``Engine.batch`` over the same requests, on every
available kernel backend; the rest of the file covers the moving parts
(scheduler coalescing, admission control, the shared cache, replica
isolation, metrics) and the Engine's own thread-safety regression.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro import kernels
from repro.core.tpa import TPA
from repro.engine import Engine, QueryRequest
from repro.exceptions import (
    NotPreprocessedError,
    ParameterError,
    ServerOverloaded,
)
from repro.graph.graph import Graph
from repro.method import PPRMethod
from repro.serving import (
    LatencyStats,
    Scheduler,
    ScoreCache,
    Server,
    percentiles,
    run_closed_loop,
)


@pytest.fixture(params=kernels.available_backends())
def each_backend(request):
    """Run the test once per installed kernel backend."""
    previous = kernels.get_backend()
    kernels.set_backend(request.param)
    yield request.param
    kernels.set_backend(previous)


@pytest.fixture(scope="module")
def served_method(small_community):
    method = TPA(s_iteration=4, t_iteration=8)
    method.preprocess(small_community)
    return method


def mixed_requests(n: int) -> list[QueryRequest]:
    """A deliberately messy request mix: duplicate seeds, full-vector and
    top-k requests interleaved, varying exclusion flags."""
    requests = []
    for index in range(60):
        seed = (index * 7) % (n // 4)  # plenty of duplicates
        if index % 5 == 0:
            requests.append(QueryRequest(seed=seed))  # full vector
        elif index % 5 == 1:
            requests.append(QueryRequest(seed=seed, k=5, exclude_seed=False))
        elif index % 5 == 2:
            requests.append(
                QueryRequest(seed=seed, k=12, exclude_neighbors=True)
            )
        else:
            requests.append(QueryRequest(seed=seed, k=8))
    return requests


def assert_results_equivalent(reference, results):
    """Bitwise equality of everything but the accounting fields
    (``seconds`` and ``cached`` legitimately differ under coalescing)."""
    assert len(reference) == len(results)
    for expected, actual in zip(reference, results):
        assert expected.seed == actual.seed
        assert expected.method == actual.method
        assert expected.error_bound == actual.error_bound
        if expected.scores is not None:
            np.testing.assert_array_equal(expected.scores, actual.scores)
            assert actual.top_nodes is None
        else:
            np.testing.assert_array_equal(
                expected.top_nodes, actual.top_nodes
            )
            np.testing.assert_array_equal(
                expected.top_scores, actual.top_scores
            )
            assert actual.scores is None


class SlowMethod(PPRMethod):
    """A stub whose online phase sleeps — for backpressure and deadlock
    tests that need the queue to actually fill up."""

    name = "SLOW"

    def __init__(self, delay: float = 0.05):
        super().__init__()
        self.delay = delay

    def _preprocess(self, graph: Graph) -> None:
        pass

    def _query(self, seed: int) -> np.ndarray:
        time.sleep(self.delay)
        scores = np.zeros(self.graph.num_nodes)
        scores[seed] = 1.0
        return scores

    def preprocessed_bytes(self) -> int:
        return 0


# -- ScoreCache ----------------------------------------------------------------


class TestScoreCache:
    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            ScoreCache(0)

    def test_lru_eviction_and_counters(self):
        cache = ScoreCache(2)
        for seed in (1, 2, 3):
            cache.put(seed, np.full(4, float(seed)))
        assert len(cache) == 2
        assert cache.get(1) is None  # evicted as LRU
        np.testing.assert_array_equal(cache.get(3), np.full(4, 3.0))
        stats = cache.stats()
        assert stats == {
            "hits": 1, "misses": 1, "evictions": 1,
            "entries": 2, "capacity": 2,
        }

    def test_get_refreshes_recency(self):
        cache = ScoreCache(2)
        cache.put(1, np.zeros(2))
        cache.put(2, np.ones(2))
        cache.get(1)  # 2 becomes LRU
        cache.put(3, np.full(2, 3.0))
        assert cache.get(2) is None
        assert cache.get(1) is not None

    def test_vectors_stored_read_only(self):
        cache = ScoreCache(4)
        vector = np.zeros(3)
        cache.put(0, vector)
        stored = cache.get(0)
        assert not stored.flags.writeable
        with pytest.raises(ValueError):
            stored[0] = 1.0

    def test_keyed_on_kernel_configuration(self):
        cache = ScoreCache(8)
        cache.put(5, np.ones(3))
        backends = kernels.available_backends()
        if len(backends) < 2:
            pytest.skip("single backend installed; no token flip to test")
        previous = kernels.get_backend()
        other = next(b for b in backends if b != previous)
        try:
            kernels.set_backend(other)
            assert cache.get(5) is None  # different cache_token
        finally:
            kernels.set_backend(previous)
        assert cache.get(5) is not None

    def test_bind_rejects_incompatible_engines(
        self, served_method, medium_community
    ):
        shared = ScoreCache(8)
        Engine(served_method, cache=shared)
        # Same method family, same graph: replicas bind cleanly.
        Engine(served_method.replicate(), cache=shared)
        # A different method instance (even same class/graph) must not
        # share — its vectors could differ (other parameters).
        other = TPA(s_iteration=2, t_iteration=4)
        other.preprocess(served_method.graph)
        with pytest.raises(ParameterError):
            Engine(other, cache=shared)
        # Different graph: also rejected.
        elsewhere = TPA(s_iteration=4, t_iteration=8)
        elsewhere.preprocess(medium_community)
        with pytest.raises(ParameterError):
            Engine(elsewhere, cache=shared)

    def test_thread_hammer_invariants(self):
        cache = ScoreCache(8)
        errors = []

        def hammer(worker: int):
            rng = np.random.default_rng(worker)
            try:
                for _ in range(300):
                    seed = int(rng.integers(0, 16))
                    vector = cache.get(seed)
                    if vector is None:
                        cache.put(seed, np.full(2, float(seed)))
                    else:
                        np.testing.assert_array_equal(
                            vector, np.full(2, float(seed))
                        )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 8
        assert stats["hits"] + stats["misses"] == 6 * 300


# -- Scheduler -----------------------------------------------------------------


class TestScheduler:
    def test_parameters_validated(self):
        with pytest.raises(ParameterError):
            Scheduler(max_batch=0)
        with pytest.raises(ParameterError):
            Scheduler(max_wait_ms=-1)
        with pytest.raises(ParameterError):
            Scheduler(max_pending=-1)

    def test_coalesces_up_to_max_batch(self):
        scheduler = Scheduler(max_batch=4, max_wait_ms=1000.0)
        for seed in range(10):
            scheduler.submit(QueryRequest(seed=seed))
        first = scheduler.next_batch(timeout=1.0)
        second = scheduler.next_batch(timeout=1.0)
        third = scheduler.next_batch(timeout=0.05)
        assert [p.request.seed for p in first] == [0, 1, 2, 3]
        assert [p.request.seed for p in second] == [4, 5, 6, 7]
        # The trailing partial batch dispatches on the worker's timeout
        # even though the age trigger (1s) has not fired.
        assert [p.request.seed for p in third] == [8, 9]

    def test_partial_batch_dispatches_after_max_wait(self):
        scheduler = Scheduler(max_batch=64, max_wait_ms=30.0)
        scheduler.submit(QueryRequest(seed=1))
        begin = time.perf_counter()
        batch = scheduler.next_batch(timeout=5.0)
        elapsed = time.perf_counter() - begin
        assert [p.request.seed for p in batch] == [1]
        assert 0.02 <= elapsed < 2.0  # age trigger, not the 5s timeout

    def test_empty_timeout_returns_none(self):
        scheduler = Scheduler(max_batch=4, max_wait_ms=1.0)
        assert scheduler.next_batch(timeout=0.05) is None

    def test_admission_bound(self):
        scheduler = Scheduler(max_batch=4, max_wait_ms=50.0, max_pending=2)
        scheduler.submit(QueryRequest(seed=0))
        scheduler.submit(QueryRequest(seed=1))
        with pytest.raises(ServerOverloaded) as excinfo:
            scheduler.submit(QueryRequest(seed=2))
        assert excinfo.value.pending == 2
        assert excinfo.value.max_pending == 2
        assert scheduler.pending == 2

    def test_close_drains_then_signals_none(self):
        scheduler = Scheduler(max_batch=4, max_wait_ms=1000.0)
        scheduler.submit(QueryRequest(seed=0))
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit(QueryRequest(seed=1))
        batch = scheduler.next_batch(timeout=1.0)
        assert [p.request.seed for p in batch] == [0]
        assert scheduler.next_batch(timeout=1.0) is None

    def test_cancel_pending_cancels_futures(self):
        scheduler = Scheduler(max_batch=4, max_wait_ms=1000.0)
        futures = [
            scheduler.submit(QueryRequest(seed=seed)) for seed in range(3)
        ]
        assert scheduler.cancel_pending() == 3
        assert scheduler.pending == 0
        assert all(future.cancelled() for future in futures)

    def test_blocked_worker_wakes_on_submit(self):
        scheduler = Scheduler(max_batch=2, max_wait_ms=5000.0)
        received = []

        def worker():
            received.append(scheduler.next_batch(timeout=5.0))

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)  # the worker is parked on the condition
        scheduler.submit(QueryRequest(seed=0))
        scheduler.submit(QueryRequest(seed=1))  # fills the batch
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert [p.request.seed for p in received[0]] == [0, 1]


# -- Server: equivalence under concurrency -------------------------------------


class TestServerEquivalence:
    def test_concurrent_submissions_match_serial_batch(
        self, served_method, small_community, each_backend
    ):
        requests = mixed_requests(small_community.num_nodes)
        reference = Engine(served_method).batch(requests)

        with Server(
            served_method, workers=3, max_batch=8, max_wait_ms=2.0,
        ) as server:
            futures = [None] * len(requests)
            barrier = threading.Barrier(6)

            def client(start: int):
                barrier.wait()  # all clients submit at once
                for index in range(start, len(requests), 6):
                    futures[index] = server.submit(requests[index])

            threads = [
                threading.Thread(target=client, args=(start,))
                for start in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=60.0) for future in futures]

        assert_results_equivalent(reference, results)

    def test_server_batch_matches_serial_batch(
        self, served_method, small_community, each_backend
    ):
        requests = mixed_requests(small_community.num_nodes)
        reference = Engine(served_method).batch(requests)
        with Server(served_method, workers=2, max_batch=16) as server:
            results = server.batch(requests, timeout=60.0)
        assert_results_equivalent(reference, results)

    def test_equivalence_with_shared_cache(
        self, served_method, small_community
    ):
        requests = mixed_requests(small_community.num_nodes)
        reference = Engine(served_method).batch(requests)
        with Server(
            served_method, workers=2, max_batch=8, cache_size=64,
        ) as server:
            first = server.batch(requests, timeout=60.0)
            second = server.batch(requests, timeout=60.0)
        assert_results_equivalent(reference, first)
        assert_results_equivalent(reference, second)
        stats = server.cache.stats()
        assert stats["hits"] > 0  # replicas pooled their hits

    def test_equivalence_under_slashburn_reorder(self, small_community):
        # SlashBurn is deterministic, so a serial reordered Engine and
        # the reordered Server replicas compute bitwise-identical
        # vectors (reordered-vs-plain is only allclose — summation
        # order differs — and is covered in test_kernels).
        requests = mixed_requests(small_community.num_nodes)
        reference = Engine(
            TPA(s_iteration=3, t_iteration=6), small_community,
            reorder="slashburn",
        ).batch(requests)
        with Server(
            TPA(s_iteration=3, t_iteration=6), small_community,
            workers=2, max_batch=8, reorder="slashburn",
        ) as server:
            results = server.batch(requests, timeout=60.0)
        assert_results_equivalent(reference, results)


# -- Server: mechanics ---------------------------------------------------------


class TestServerMechanics:
    def test_workers_validated(self, served_method):
        with pytest.raises(ParameterError):
            Server(served_method, workers=0)

    def test_submit_validates_before_enqueue(self, served_method):
        with Server(served_method, workers=1) as server:
            with pytest.raises(ParameterError):
                server.submit(QueryRequest(seed=0, k=0))
            with pytest.raises(ValueError):
                server.submit(QueryRequest(seed=10**9, k=5))
            with pytest.raises(TypeError):
                server.submit(QueryRequest(seed=1.5, k=5))  # type: ignore
            # The poisoned submissions never reached a worker; the
            # server still serves.
            assert server.query(0, k=3, timeout=30.0).seed == 0

    def test_overload_backpressure(self, small_community):
        method = SlowMethod(delay=0.2)
        method.preprocess(small_community)
        with Server(
            method, workers=1, max_batch=1, max_wait_ms=0.0,
            max_pending=1, warm=False,
        ) as server:
            with pytest.raises(ServerOverloaded):
                # The single worker is busy for 200ms at a time; with one
                # queue slot some of these submissions must be rejected.
                for seed in range(20):
                    server.submit(QueryRequest(seed=seed, k=2))

    def test_close_drains_pending(self, served_method):
        server = Server(served_method, workers=2, max_batch=4)
        futures = [
            server.submit(QueryRequest(seed=seed, k=5)) for seed in range(24)
        ]
        server.close()  # drain=True: every future must complete
        done, not_done = wait(futures, timeout=60.0)
        assert not not_done
        assert all(future.result().top_nodes is not None for future in done)
        with pytest.raises(RuntimeError):
            server.submit(QueryRequest(seed=0, k=5))
        server.close()  # idempotent

    def test_close_without_drain_cancels(self, small_community):
        method = SlowMethod(delay=0.1)
        method.preprocess(small_community)
        server = Server(
            method, workers=1, max_batch=1, max_wait_ms=0.0, warm=False,
        )
        futures = [
            server.submit(QueryRequest(seed=seed, k=2)) for seed in range(10)
        ]
        server.close(drain=False)
        outcomes = []
        for future in futures:
            if future.cancelled():
                outcomes.append("cancelled")
            else:
                future.result(timeout=30.0)
                outcomes.append("done")
        assert "cancelled" in outcomes  # queued work was dropped

    def test_worker_survives_client_cancellation(self, small_community):
        """A client that times out and cancels its future must not kill
        the worker that later tries to resolve it."""
        method = SlowMethod(delay=0.1)
        method.preprocess(small_community)
        with Server(
            method, workers=1, max_batch=1, max_wait_ms=0.0, warm=False,
        ) as server:
            first = server.submit(QueryRequest(seed=0, k=2))
            victim = server.submit(QueryRequest(seed=1, k=2))
            last = server.submit(QueryRequest(seed=2, k=2))
            victim.cancel()  # races the worker; either outcome is fine
            assert first.result(timeout=30.0).seed == 0
            assert last.result(timeout=30.0).seed == 2
            # The worker survived whatever the race decided.
            assert server.query(3, k=2, timeout=30.0).seed == 3

    def test_worker_survives_failing_batch(self, small_community):
        class FlakyMethod(SlowMethod):
            name = "FLAKY"

            def _query(self, seed: int) -> np.ndarray:
                if seed == 13:
                    raise RuntimeError("boom")
                return super()._query(seed)

        method = FlakyMethod(delay=0.0)
        method.preprocess(small_community)
        with Server(
            method, workers=1, max_batch=1, max_wait_ms=0.0, warm=False,
        ) as server:
            bad = server.submit(QueryRequest(seed=13, k=2))
            with pytest.raises(RuntimeError, match="boom"):
                bad.result(timeout=30.0)
            good = server.query(5, k=2, timeout=30.0)
            assert good.seed == 5

    def test_stats_shape(self, served_method):
        with Server(served_method, workers=2, cache_size=16) as server:
            server.batch(
                [QueryRequest(seed=seed, k=4) for seed in range(40)],
                timeout=60.0,
            )
            stats = server.stats()
        assert stats["workers"] == 2
        assert stats["completed"] == 40
        assert stats["queries_served"] == 40
        assert stats["throughput_qps"] > 0
        assert (
            stats["latency_p50_ms"]
            <= stats["latency_p95_ms"]
            <= stats["latency_p99_ms"]
            <= stats["latency_max_ms"]
        )
        assert stats["cache"]["capacity"] == 16

    def test_closed_loop_load_generator(self, served_method):
        with Server(served_method, workers=2, max_batch=8) as server:
            report = run_closed_loop(
                server, seeds=np.arange(32), k=5,
                clients=3, requests_per_client=10,
            )
        assert report.requests == 30
        assert report.errors == 0
        assert report.queries_per_second > 0
        assert report.latency_p50_ms <= report.latency_p99_ms
        assert report.to_dict()["clients"] == 3


# -- Replication ---------------------------------------------------------------


class TestReplication:
    def test_method_replica_shares_preprocessed_state(self, served_method):
        replica = served_method.replicate()
        assert replica is not served_method
        assert replica.graph is served_method.graph
        assert replica._stranger is served_method._stranger  # shared array
        assert replica._workspace is not served_method._workspace
        np.testing.assert_array_equal(
            replica.query(7), served_method.query(7)
        )

    def test_unpreprocessed_method_cannot_replicate(self):
        with pytest.raises(NotPreprocessedError):
            TPA().replicate()

    def test_monte_carlo_replica_gets_independent_rng(self, small_community):
        from repro.baselines import BiPPR

        method = BiPPR(seed=3)
        method.preprocess(small_community)
        replica = method.replicate()
        assert replica._rng is not method._rng

    def test_callers_method_stays_private_while_server_runs(
        self, small_community
    ):
        """No worker thread may serve on the caller's live method
        object — the caller keeps using it concurrently."""
        method = TPA(s_iteration=3, t_iteration=6)
        method.preprocess(small_community)
        expected = {seed: method.query(seed) for seed in range(4)}
        errors = []
        stop = threading.Event()
        with Server(method, workers=2, max_batch=4) as server:

            def outside_user():
                try:
                    while not stop.is_set():
                        for seed in range(4):
                            np.testing.assert_array_equal(
                                method.query(seed), expected[seed]
                            )
                except Exception as error:  # pragma: no cover - failure
                    errors.append(error)

            thread = threading.Thread(target=outside_user)
            thread.start()
            server.batch(
                [QueryRequest(seed=seed % 25, k=5) for seed in range(200)],
                timeout=60.0,
            )
            stop.set()
            thread.join()
        assert not errors

    def test_engine_replica_serves_identically(self, served_method):
        engine = Engine(served_method, cache_size=8)
        replica = engine.replicate()
        assert replica.method is not engine.method
        assert replica.cache is engine.cache  # shared score cache
        np.testing.assert_array_equal(
            engine.query(3, k=6).top_nodes, replica.query(3, k=6).top_nodes
        )
        # The replica's hit came from the vector the original cached.
        assert replica.stats()["cache_hits"] == 1


# -- Engine thread-safety regression (satellite fix) ---------------------------


class TestEngineThreadSafety:
    def test_threads_hammering_query(self, served_method):
        """A bare Engine with caching on must survive concurrent query()
        calls from many threads and keep returning correct vectors."""
        engine = Engine(served_method, cache_size=4)
        seeds = [0, 1, 2, 3, 4, 5]
        expected = {seed: served_method.query(seed) for seed in seeds}
        errors = []

        def hammer(worker: int):
            try:
                for index in range(25):
                    seed = seeds[(worker + index) % len(seeds)]
                    result = engine.query(seed)
                    np.testing.assert_array_equal(
                        result.scores, expected[seed]
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = engine.stats()
        assert stats["queries_served"] == 8 * 25
        assert stats["cache_hits"] + stats["cache_misses"] == 8 * 25
        assert stats["cache_entries"] <= 4

    def test_stats_readable_during_serving(self, served_method):
        engine = Engine(served_method, cache_size=2)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    stats = engine.stats()
                    assert stats["queries_served"] >= 0
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        thread = threading.Thread(target=reader)
        thread.start()
        for seed in range(30):
            engine.query(seed % 5)
        stop.set()
        thread.join()
        assert not errors


# -- Metrics -------------------------------------------------------------------


class TestMetrics:
    def test_percentiles_empty(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_percentiles_ordered(self):
        samples = np.linspace(1.0, 100.0, 100)
        result = percentiles(samples)
        assert result["p50"] <= result["p95"] <= result["p99"]
        assert result["p99"] == pytest.approx(99.01, abs=0.1)

    def test_latency_stats_snapshot(self):
        stats = LatencyStats()
        for value in (0.010, 0.020, 0.030):
            stats.record(
                queue_seconds=value / 2,
                compute_seconds=value / 2,
                total_seconds=value,
            )
        snap = stats.snapshot()
        assert snap["completed"] == 3
        assert snap["latency_p50_ms"] == pytest.approx(20.0)
        assert snap["latency_max_ms"] == pytest.approx(30.0)
        assert snap["queue_mean_ms"] == pytest.approx(10.0)
        assert snap["compute_mean_ms"] == pytest.approx(10.0)

    def test_throughput_ignores_idle_time_before_traffic(self):
        stats = LatencyStats()
        time.sleep(0.15)  # idle before the first request arrives
        for _ in range(10):
            stats.record(0.0005, 0.0005, 0.001)
        snap = stats.snapshot()
        # 10 requests in a burst of ~ms: idle lead-in must not drag the
        # rate toward 10/0.15.
        assert snap["throughput_qps"] > 500

    def test_latency_stats_thread_safe(self):
        stats = LatencyStats(capacity=128)
        threads = [
            threading.Thread(
                target=lambda: [
                    stats.record(0.001, 0.001, 0.002) for _ in range(200)
                ]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.snapshot()["completed"] == 800
