"""Tests for the batched query engine (repro.engine.Engine)."""

import numpy as np
import pytest

from repro.core.tpa import TPA
from repro.engine import Engine, QueryRequest, create_method
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def engine(small_community):
    return Engine(
        create_method("tpa", s_iteration=4, t_iteration=8), small_community
    )


class TestLifecycle:
    def test_constructor_preprocesses(self, small_community):
        method = create_method("tpa")
        assert not method.is_preprocessed
        engine = Engine(method, small_community)
        assert method.is_preprocessed
        assert engine.preprocess_seconds > 0
        assert engine.graph is small_community

    def test_adopts_preprocessed_method(self, small_community):
        method = TPA(s_iteration=3, t_iteration=6)
        method.preprocess(small_community)
        engine = Engine(method)
        assert engine.preprocess_seconds == 0.0
        assert engine.graph is small_community

    def test_requires_graph_or_preprocessed_method(self):
        with pytest.raises(ParameterError):
            Engine(create_method("tpa"))

    def test_negative_cache_size_rejected(self, small_community):
        with pytest.raises(ParameterError):
            Engine(create_method("tpa"), small_community, cache_size=-1)


class TestQueryResults:
    def test_full_vector_result(self, engine, small_community):
        result = engine.query(5)
        assert result.scores.shape == (small_community.num_nodes,)
        assert result.top_nodes is None
        assert result.seed == 5
        assert result.method == "TPA"
        assert result.seconds > 0
        assert result.preprocessed_bytes == engine.method.preprocessed_bytes()
        assert result.cached is False

    def test_matches_direct_query(self, engine):
        np.testing.assert_array_equal(
            engine.query(9).scores, engine.method.query(9)
        )

    def test_error_bound_forwarded(self, engine):
        result = engine.query(0)
        assert result.error_bound == pytest.approx(engine.method.error_bound())

    def test_no_error_bound_methods_report_none(self, small_community):
        engine = Engine(create_method("bear"), small_community)
        assert engine.query(0).error_bound is None

    def test_top_k_result(self, engine):
        result = engine.query(5, k=7)
        assert result.scores is None
        assert result.top_nodes.shape == (7,)
        np.testing.assert_array_equal(
            result.top_nodes, engine.method.top_k(5, 7)
        )
        full = engine.method.query(5)
        np.testing.assert_array_equal(result.top_scores,
                                      full[result.top_nodes])

    def test_top_k_exclusion_flags(self, engine):
        included = engine.query(5, k=3, exclude_seed=False)
        assert included.top_nodes[0] == 5  # the seed ranks first in its RWR
        excluded = engine.query(5, k=3)
        assert 5 not in excluded.top_nodes

    def test_invalid_k_rejected(self, engine):
        with pytest.raises(ParameterError):
            engine.query(0, k=0)

    def test_invalid_k_rejected_before_compute(self, engine):
        """A malformed request fails fast: no online pass runs, no stats
        half-update happens."""
        before = engine.stats()
        with pytest.raises(ParameterError):
            engine.batch(
                [QueryRequest(seed=1), QueryRequest(seed=2, k=0)]
            )
        assert engine.stats() == before

    def test_out_of_range_seed_rejected(self, engine, small_community):
        with pytest.raises(ValueError):
            engine.query(small_community.num_nodes)


class TestBatch:
    def test_empty_batch(self, engine):
        assert engine.batch([]) == []

    def test_order_preserved(self, engine):
        seeds = [9, 2, 5, 2]
        results = engine.batch([QueryRequest(seed=s) for s in seeds])
        assert [r.seed for r in results] == seeds

    def test_duplicate_seeds_share_compute(self, engine):
        results = engine.batch(
            [QueryRequest(seed=4), QueryRequest(seed=4), QueryRequest(seed=4)]
        )
        assert results[0].cached is False
        assert results[1].cached is True and results[1].seconds == 0.0
        np.testing.assert_array_equal(results[0].scores, results[1].scores)

    def test_mixed_request_shapes(self, engine):
        results = engine.batch(
            [QueryRequest(seed=1), QueryRequest(seed=2, k=5)]
        )
        assert results[0].scores is not None
        assert results[1].top_nodes.shape == (5,)

    def test_batch_matches_query_many(self, engine):
        seeds = np.array([1, 2, 3])
        results = engine.batch([QueryRequest(seed=int(s)) for s in seeds])
        matrix = engine.method.query_many(seeds)
        for row, result in zip(matrix, results):
            np.testing.assert_array_equal(result.scores, row)


class TestCache:
    def test_cache_hit_and_eviction(self, small_community):
        engine = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, cache_size=2,
        )
        first = engine.query(1)
        again = engine.query(1)
        assert first.cached is False and again.cached is True
        assert again.seconds == 0.0
        np.testing.assert_array_equal(first.scores, again.scores)

        engine.query(2)
        engine.query(3)  # evicts seed 1 (LRU capacity 2)
        assert engine.query(1).cached is False
        stats = engine.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_entries"] == 2

    def test_cached_vectors_are_read_only(self, small_community):
        engine = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, cache_size=2,
        )
        result = engine.query(1)
        with pytest.raises(ValueError):
            result.scores[0] = 99.0

    def test_cache_serves_top_k_requests(self, small_community):
        engine = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, cache_size=4,
        )
        full = engine.query(6)
        top = engine.query(6, k=5)
        assert top.cached is True
        np.testing.assert_array_equal(
            top.top_nodes, engine.method.top_k(6, 5)
        )
        assert full.scores is not None

    def test_clear_cache(self, small_community):
        engine = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, cache_size=2,
        )
        engine.query(1)
        engine.clear_cache()
        assert engine.query(1).cached is False


class TestServe:
    def test_shape_and_agreement(self, engine):
        seeds = [0, 5, 9]
        rankings = engine.serve(seeds, k=10)
        assert rankings.shape == (3, 10)
        assert rankings.dtype == np.int64
        for seed, row in zip(seeds, rankings):
            np.testing.assert_array_equal(row, engine.method.top_k(seed, 10))

    def test_stats_accumulate(self, small_community):
        engine = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community,
        )
        engine.serve([0, 1], k=3)
        engine.query(2)
        stats = engine.stats()
        assert stats["queries_served"] == 3
        assert stats["online_seconds"] > 0


class TestAdaptiveStreamBlock:
    def test_fixed_default(self, engine):
        assert engine.stream_block == 128
        assert engine.memory_budget_bytes is None

    def test_auto_derives_from_budget_and_dtype(self, small_community):
        from repro import kernels

        budget = 1 << 20
        auto = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, stream_block="auto",
            memory_budget_bytes=budget,
        )
        n = small_community.num_nodes
        itemsize = np.dtype(kernels.compute_dtype()).itemsize
        expected = max(1, min(budget // (n * (3 * itemsize + 1)), 4096))
        assert auto.stream_block == expected
        assert auto.memory_budget_bytes == budget

    def test_budget_alone_implies_auto(self, small_community):
        tight = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, memory_budget_bytes=1,
        )
        assert tight.stream_block == 1  # floor: always at least one seed

    def test_auto_default_budget(self, small_community):
        auto = Engine(
            create_method("tpa", s_iteration=3, t_iteration=6),
            small_community, stream_block="auto",
        )
        assert auto.memory_budget_bytes == 64 << 20
        assert 1 <= auto.stream_block <= 4096

    def test_invalid_values_rejected(self, small_community):
        from repro.exceptions import ParameterError

        method = create_method("tpa", s_iteration=3, t_iteration=6)
        with pytest.raises(ParameterError):
            Engine(method, small_community, stream_block="huge")
        with pytest.raises(ParameterError):
            Engine(method, small_community, stream_block=0)
        with pytest.raises(ParameterError):
            Engine(method, small_community, memory_budget_bytes=0)
        with pytest.raises(ParameterError):
            # A fixed width and a budget contradict each other.
            Engine(
                method, small_community,
                stream_block=64, memory_budget_bytes=1 << 20,
            )

    def test_auto_streamed_results_match_fixed(self, small_community):
        method = create_method("tpa", s_iteration=3, t_iteration=6)
        method.preprocess(small_community)
        requests = [
            QueryRequest(seed=seed % 40, k=7) for seed in range(120)
        ]
        fixed = Engine(method, stream_block=16).batch(requests)
        # A tight budget forces multi-block streaming on the same data.
        auto = Engine(
            method, stream_block="auto",
            memory_budget_bytes=32 * small_community.num_nodes,
        ).batch(requests)
        for a, b in zip(fixed, auto):
            np.testing.assert_array_equal(a.top_nodes, b.top_nodes)
            np.testing.assert_array_equal(a.top_scores, b.top_scores)


class TestSharedCacheParameter:
    def test_cache_object_and_size_are_exclusive(self, small_community):
        from repro.exceptions import ParameterError
        from repro.serving import ScoreCache

        with pytest.raises(ParameterError):
            Engine(
                create_method("tpa", s_iteration=3, t_iteration=6),
                small_community, cache_size=4, cache=ScoreCache(4),
            )

    def test_shared_cache_across_engines(self, small_community):
        from repro.serving import ScoreCache

        shared = ScoreCache(8)
        method = create_method("tpa", s_iteration=3, t_iteration=6)
        method.preprocess(small_community)
        first = Engine(method, cache=shared)
        second = Engine(method.replicate(), cache=shared)
        assert first.query(3).cached is False
        assert second.query(3).cached is True  # hit via the shared cache
        assert shared.stats()["hits"] == 1
