"""Unit tests for the HubPPR baseline."""

import numpy as np
import pytest

from repro.baselines.hubppr import HubPPR
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(small_community):
    method = HubPPR(seed=0, max_walks=30_000, refine_top=120)
    method.preprocess(small_community)
    return method


class TestHubPPR:
    def test_index_built(self, prepared):
        assert prepared.preprocessed_bytes() > 0

    def test_hubs_are_high_degree(self, prepared, small_community):
        total_degree = small_community.out_degree + small_community.in_degree
        hubs = prepared._hubs
        non_hub_max = np.delete(total_degree, hubs).max()
        assert total_degree[hubs].min() >= non_hub_max * 0.5

    def test_high_topk_recall(self, prepared, small_community):
        exact = rwr_direct(small_community, 4)
        approx = prepared.query(4)
        assert recall_at_k(exact, approx, 50) >= 0.9

    def test_refined_pair_scores_accurate(self, prepared, small_community):
        """Refined targets should carry near-exact pair scores."""
        seed = 4
        exact = rwr_direct(small_community, seed)
        approx = prepared.query(seed)
        top = np.argsort(-exact)[:10]
        for target in top:
            assert approx[target] == pytest.approx(
                exact[target], abs=0.02
            )

    def test_hub_seed_uses_forward_index(self, prepared):
        hub = int(prepared._hubs[0])
        scores = prepared.query(hub)
        assert scores.sum() == pytest.approx(1.0, abs=0.25)

    def test_walk_cap_bounds_index(self, small_community):
        capped = HubPPR(seed=0, max_walks=30_000, hub_walk_cap=100)
        capped.preprocess(small_community)
        uncapped = HubPPR(seed=0, max_walks=30_000, hub_walk_cap=5_000)
        uncapped.preprocess(small_community)
        assert capped.preprocessed_bytes() < uncapped.preprocessed_bytes()

    def test_memory_budget_enforced(self, small_community):
        method = HubPPR(seed=0, memory_budget_bytes=50)
        with pytest.raises(MemoryBudgetExceeded):
            method.preprocess(small_community)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"hub_fraction": 0.0},
            {"hub_fraction": 1.0},
            {"backward_rmax": 0.0},
            {"c": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            HubPPR(**kwargs)
