"""Unit tests for the disk-resident graph extension."""

import numpy as np
import pytest

from repro.core.cpi import cpi
from repro.core.tpa import TPA
from repro.exceptions import GraphFormatError, ParameterError
from repro.graph.diskgraph import DiskGraph
from repro.graph.graph import Graph


@pytest.fixture(scope="module")
def disk_pair(tmp_path_factory, small_community):
    directory = tmp_path_factory.mktemp("diskgraph")
    disk = DiskGraph.build(small_community, directory, rows_per_stripe=64)
    return small_community, disk


class TestBuildAndOpen:
    def test_metadata(self, disk_pair):
        graph, disk = disk_pair
        assert disk.num_nodes == graph.num_nodes
        assert disk.num_edges == graph.num_edges
        assert disk.num_stripes == int(np.ceil(graph.num_nodes / 64))

    def test_reopen_from_directory(self, disk_pair, tmp_path):
        graph, disk = disk_pair
        reopened = DiskGraph(disk._dir)
        assert reopened.num_nodes == graph.num_nodes

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError):
            DiskGraph(tmp_path / "nope")

    def test_invalid_stripe_size(self, small_community, tmp_path):
        with pytest.raises(ParameterError):
            DiskGraph.build(small_community, tmp_path, rows_per_stripe=0)

    def test_disk_footprint_positive(self, disk_pair):
        _, disk = disk_pair
        assert disk.disk_bytes() > 0
        assert 0 < disk.resident_bytes() <= disk.disk_bytes()


class TestPropagateEquivalence:
    def test_matches_in_memory(self, disk_pair):
        graph, disk = disk_pair
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = rng.random(graph.num_nodes)
            np.testing.assert_allclose(
                disk.propagate(x), graph.propagate(x), atol=1e-12
            )

    def test_mass_conserved(self, disk_pair):
        _, disk = disk_pair
        x = np.random.default_rng(2).random(disk.num_nodes)
        assert disk.propagate(x).sum() == pytest.approx(x.sum())

    def test_stripe_size_irrelevant(self, small_community, tmp_path):
        x = np.random.default_rng(3).random(small_community.num_nodes)
        results = []
        for stripe in (1, 7, 400, 10_000):
            disk = DiskGraph.build(
                small_community, tmp_path / f"s{stripe}", rows_per_stripe=stripe
            )
            results.append(disk.propagate(x))
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, atol=1e-12)

    def test_wrong_vector_length(self, disk_pair):
        _, disk = disk_pair
        with pytest.raises(ParameterError):
            disk.propagate(np.zeros(3))

    def test_dangling_uniform_correction(self, tmp_path):
        graph = Graph(3, [0, 1], [1, 2], dangling="uniform")
        disk = DiskGraph.build(graph, tmp_path / "dang")
        x = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(disk.propagate(x), graph.propagate(x))

    def test_trailing_empty_rows(self, tmp_path):
        """Nodes with no in-edges at the end of a stripe (empty rows of
        Ã^T) must not break the segment sums."""
        # Node 2 has no in-edges: row 2 of A~^T is empty.
        graph = Graph(3, [0, 1, 2], [1, 0, 0])
        disk = DiskGraph.build(graph, tmp_path / "empty", rows_per_stripe=3)
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(disk.propagate(x), graph.propagate(x))


class TestDiskBackedAlgorithms:
    def test_cpi_on_disk_graph(self, disk_pair):
        graph, disk = disk_pair
        via_disk = cpi(disk, 5, tol=1e-12).scores
        via_memory = cpi(graph, 5, tol=1e-12).scores
        np.testing.assert_allclose(via_disk, via_memory, atol=1e-12)

    def test_tpa_on_disk_graph(self, disk_pair):
        """The paper's future-work item: disk-based TPA, end to end."""
        graph, disk = disk_pair
        disk_tpa = TPA(s_iteration=5, t_iteration=10)
        disk_tpa.preprocess(disk)
        memory_tpa = TPA(s_iteration=5, t_iteration=10)
        memory_tpa.preprocess(graph)
        np.testing.assert_allclose(
            disk_tpa.query(3), memory_tpa.query(3), atol=1e-12
        )

    def test_pagerank_on_disk_graph(self, disk_pair):
        graph, disk = disk_pair
        from repro.ranking import pagerank

        np.testing.assert_allclose(
            pagerank(disk, tol=1e-12), pagerank(graph, tol=1e-12), atol=1e-10
        )
