"""Property-based equivalence of the dynamic overlay against a
rebuild-from-scratch oracle.

Random interleavings of ``add_edges`` / ``remove_edges`` / query /
``compact`` run against a :class:`~repro.dynamic.DynamicGraph` while a
mirrored edge set rebuilds the mutated graph from scratch at every
checkpoint.  While mutations are pending the overlay product must agree
with the oracle inside the documented ``~overlay-1e-12`` accuracy tier
(amplified through CPI's convergent series); immediately after
``compact`` the CSR — and therefore every score — must be **bitwise**
identical to the from-scratch build.

A deterministic interleaving additionally sweeps the serving matrix:
every installed kernel backend x compute dtype (float64 / float32) x
Engine reordering (identity / SlashBurn).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CPIMethod, Engine, Graph, community_graph, cpi, kernels
from repro.dynamic import DynamicGraph

BACKENDS = kernels.available_backends()

#: Pending-overlay score tolerance: OVERLAY_TOLERANCE per entry,
#: amplified by the 1/c series factor and n accumulations.
OVERLAY_SCORE_TOL = 1e-8


@pytest.fixture
def backend_restore():
    previous = kernels.get_backend()
    yield
    kernels.set_backend(previous)


@pytest.fixture
def dtype_restore():
    previous = kernels.compute_dtype()
    yield
    kernels.set_compute_dtype(previous)


def _base_graph(n, seed):
    # Rebuilt under the "uniform" dangling policy so deletions that empty
    # a row stay legal mid-interleaving.
    generated = community_graph(n, avg_degree=4, num_communities=3, seed=seed)
    src, dst = generated.edges()
    return Graph(n, src, dst, dangling="uniform")


def _mirror(graph):
    src, dst = graph.edges()
    return set(zip(src.tolist(), dst.tolist()))


def _oracle(n, edge_set):
    pairs = np.asarray(sorted(edge_set), dtype=np.int64)
    return Graph(n, pairs[:, 0], pairs[:, 1], dangling="uniform")


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "query", "compact"]),
        st.integers(min_value=0, max_value=79),
        st.integers(min_value=0, max_value=79),
    ),
    min_size=4,
    max_size=24,
)


class TestRandomInterleavings:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.function_scoped_fixture],
    )
    @given(ops=_OPS, n=st.integers(min_value=30, max_value=80),
           seed=st.integers(min_value=0, max_value=999))
    def test_interleaving_matches_rebuild_oracle(
        self, backend, backend_restore, ops, n, seed
    ):
        kernels.set_backend(backend)
        base = _base_graph(n, seed)
        dyn = DynamicGraph(base)
        mirror = _mirror(base)
        for verb, a, b in ops:
            a %= n
            b %= n
            if verb == "add":
                applied = dyn.add_edges([(a, b)])
                if a != b and (a, b) not in mirror:
                    assert applied == 1
                    mirror.add((a, b))
                else:
                    assert applied == 0
            elif verb == "remove":
                if len(mirror) <= 1:
                    continue
                applied = dyn.remove_edges([(a, b)])
                if (a, b) in mirror:
                    assert applied == 1
                    mirror.discard((a, b))
                else:
                    assert applied == 0
            elif verb == "query":
                want = cpi(_oracle(n, mirror), seeds=a).scores
                got = cpi(dyn, seeds=a).scores
                assert np.abs(got - want).sum() <= OVERLAY_SCORE_TOL
            else:  # compact
                dyn.compact()
                oracle = _oracle(n, mirror)
                adjacency = dyn.base_graph.adjacency
                assert np.array_equal(adjacency.indptr, oracle.adjacency.indptr)
                assert np.array_equal(
                    adjacency.indices, oracle.adjacency.indices
                )
                x = np.linspace(0.0, 1.0, n)
                assert np.array_equal(
                    dyn.propagate(x), oracle.propagate(x)
                )
        # Terminal checkpoint: compact once more and demand bitwise.
        dyn.compact()
        oracle = _oracle(n, mirror)
        got = cpi(dyn, seeds=0).scores
        want = cpi(oracle, seeds=0).scores
        assert np.array_equal(got, want)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("reorder", [None, "slashburn"])
def test_engine_deterministic_interleaving(
    backend, dtype, reorder, backend_restore, dtype_restore
):
    """One fixed add/remove/query/compact tape through the Engine across
    the full backend x dtype x reordering serving matrix."""
    kernels.set_backend(backend)
    kernels.set_compute_dtype(dtype)
    tol = 5e-8 if dtype == "float64" else 5e-4
    n = 120
    base = _base_graph(n, seed=23)
    dyn = DynamicGraph(base)
    mirror = _mirror(base)
    engine = Engine(CPIMethod(), dyn, cache_size=16, reorder=reorder)

    def check(seed):
        oracle_engine = Engine(
            CPIMethod(), _oracle(n, mirror), cache_size=0, reorder=reorder
        )
        got = engine.query(seed).scores
        want = oracle_engine.query(seed).scores
        assert np.abs(got - want).sum() <= tol

    check(0)
    for s, t in [(0, 60), (60, 0), (5, 100), (100, 5)]:
        assert dyn.add_edges([(s, t)]) == 1
        mirror.add((s, t))
    check(0)
    check(7)
    dyn.compact()
    check(0)
    victims = [(5, 100), (0, 60)]
    for s, t in victims:
        assert dyn.remove_edges([(s, t)]) == 1
        mirror.discard((s, t))
    check(7)
    dyn.compact()
    check(7)
    # The same seed twice post-compact: second hit must come from cache.
    before = engine.stats()["cache_hits"]
    engine.query(7)
    assert engine.stats()["cache_hits"] == before + 1
