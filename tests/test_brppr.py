"""Unit tests for the BRPPR baseline."""

import numpy as np
import pytest

from repro.baselines.brppr import BRPPR
from repro.exceptions import NotPreprocessedError, ParameterError
from repro.metrics.accuracy import recall_at_k
from repro.ranking.rwr import rwr_direct


@pytest.fixture(scope="module")
def prepared(medium_community):
    method = BRPPR()
    method.preprocess(medium_community)
    return method


class TestBRPPR:
    def test_no_preprocessed_data(self, prepared):
        """BRPPR is online-only — no bar in Figure 1(a)."""
        assert prepared.preprocessed_bytes() == 0

    def test_high_accuracy(self, prepared, medium_community):
        exact = rwr_direct(medium_community, 4)
        approx = prepared.query(4)
        assert np.abs(exact - approx).sum() < 0.05

    def test_high_recall(self, prepared, medium_community):
        exact = rwr_direct(medium_community, 4)
        approx = prepared.query(4)
        assert recall_at_k(exact, approx, 100) >= 0.95

    def test_active_set_recorded(self, prepared):
        prepared.query(0)
        assert 0 < prepared.last_active_size <= prepared.graph.num_nodes

    def test_larger_kappa_allows_smaller_active_set(self, medium_community):
        tight = BRPPR(kappa=1e-4)
        tight.preprocess(medium_community)
        tight.query(0)
        loose = BRPPR(kappa=0.5)
        loose.preprocess(medium_community)
        loose.query(0)
        assert loose.last_active_size <= tight.last_active_size

    def test_frontier_mass_bounded_by_kappa(self, medium_community):
        """On exit, the rank parked outside the active set is < kappa
        (unless the whole graph is active)."""
        method = BRPPR(kappa=5e-3)
        method.preprocess(medium_community)
        exact = rwr_direct(medium_community, 8)
        approx = method.query(8)
        if method.last_active_size < medium_community.num_nodes:
            assert np.abs(exact - approx).sum() < 10 * method.kappa

    def test_scores_sum_near_one(self, prepared):
        assert prepared.query(2).sum() == pytest.approx(1.0, abs=1e-2)

    def test_query_before_preprocess(self):
        with pytest.raises(NotPreprocessedError):
            BRPPR().query(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"expand_threshold": 0.0},
            {"kappa": 0.0},
            {"c": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            BRPPR(**kwargs)

    def test_dangling_uniform_graph(self, dangling_graph_uniform):
        method = BRPPR()
        method.preprocess(dangling_graph_uniform)
        scores = method.query(0)
        assert scores.sum() == pytest.approx(1.0, abs=1e-2)
