"""The compiled sparse-kernel layer: backends, equivalence, and policy.

The kernel layer's contract has three legs, each asserted here:

* the NumPy fallback is *bitwise identical* to the pre-kernel
  ``operator @ x`` code path (property-tested on random CSR matrices);
* the Numba backend, when installed, agrees with the fallback to
  ``<= 1e-12`` and is exercised through the same dispatchers;
* global numeric policy (backend + compute dtype) is visible to caches
  via ``cache_token`` and never leaks between tests (fixtures restore).

Plus the satellites that ride on the layer: retained-workspace byte
accounting, the Engine's dtype/backend-aware LRU key, and the SlashBurn
locality reordering fast path.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import kernels
from repro.core.cpi import CPIMethod, cpi, cpi_many
from repro.core.tpa import TPA
from repro.engine import Engine, create_method
from repro.exceptions import ParameterError
from repro.graph.generators import community_graph
from repro.kernels import Workspace, backend, locality_reordering

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@pytest.fixture(autouse=True)
def _restore_kernel_policy():
    """Backend and compute dtype are process-global; never leak them."""
    backend_before = kernels.get_backend()
    dtype_before = kernels.compute_dtype()
    yield
    kernels.set_backend(backend_before)
    kernels.set_compute_dtype(dtype_before)


def _random_csr(rng: np.random.Generator, rows: int, cols: int, density: float):
    matrix = sp.random_array(
        (rows, cols), density=density, format="csr", rng=rng,
        data_sampler=lambda size: rng.standard_normal(size),
    )
    return sp.csr_array(matrix)


class TestNumpyFallbackBitwise:
    """The fallback must reproduce ``A @ x`` bit for bit — it IS the old
    code path, reached through the new dispatcher."""

    @_SETTINGS
    @given(
        rows=st.integers(1, 80),
        cols=st.integers(1, 80),
        density=st.floats(0.0, 0.6),
        batch=st.integers(1, 9),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_spmv_and_spmm_match_scipy(self, rows, cols, density, batch, seed):
        kernels.set_backend("numpy")
        rng = np.random.default_rng(seed)
        matrix = _random_csr(rng, rows, cols, density)
        x = rng.standard_normal(cols)
        np.testing.assert_array_equal(kernels.spmv(matrix, x), matrix @ x)
        big = rng.standard_normal((cols, batch))
        np.testing.assert_array_equal(kernels.spmm(matrix, big), matrix @ big)

    @_SETTINGS
    @given(seed=st.integers(0, 2**32 - 1))
    def test_out_buffer_does_not_change_results(self, seed):
        kernels.set_backend("numpy")
        rng = np.random.default_rng(seed)
        matrix = _random_csr(rng, 60, 60, 0.1)
        x = rng.standard_normal(60)
        out = np.full(60, np.nan)  # stale garbage must be overwritten
        np.testing.assert_array_equal(
            kernels.spmv(matrix, x, out=out), matrix @ x
        )
        big = rng.standard_normal((60, 5))
        out2 = np.full((60, 5), np.nan)
        np.testing.assert_array_equal(
            kernels.spmm(matrix, big, out=out2), matrix @ big
        )

    def test_graph_propagate_is_bitwise_unchanged(self, small_community, rng):
        kernels.set_backend("numpy")
        x = rng.random(small_community.num_nodes)
        np.testing.assert_array_equal(
            small_community.propagate(x),
            small_community.transition_transpose @ x,
        )
        big = rng.random((small_community.num_nodes, 7))
        np.testing.assert_array_equal(
            small_community.propagate(big),
            small_community.transition_transpose @ big,
        )

    def test_out_contract_enforced(self, rng):
        matrix = _random_csr(np.random.default_rng(0), 20, 20, 0.2)
        x = rng.random(20)
        with pytest.raises(ParameterError):
            kernels.spmv(matrix, x, out=np.empty(21))
        with pytest.raises(ParameterError):
            kernels.spmv(matrix, x, out=np.empty(20, dtype=np.float32))
        with pytest.raises(ParameterError):
            kernels.spmv(matrix, x, out=x)
        with pytest.raises(ParameterError):
            kernels.spmm(matrix, rng.random((20, 4)), out=np.empty((4, 20)).T)


# The interpreted-twin fixture ``numba_source_namespace`` lives in
# conftest.py now — the tiling/top-k suite uses it too.


class TestCompiledKernelLogic:
    """Interpreted execution of the numba kernels against the references."""

    def test_spmv_spmm_match_scipy_in_both_dtypes(
        self, numba_source_namespace
    ):
        rng = np.random.default_rng(3)
        for dtype in (np.float64, np.float32):
            matrix = _random_csr(rng, 50, 50, 0.3).astype(dtype)
            x = rng.random(50).astype(dtype)
            big = np.ascontiguousarray(rng.random((50, 6)).astype(dtype))
            out_v = np.empty(50, dtype)
            out_m = np.empty((50, 6), dtype)
            numba_source_namespace["_spmv"](
                matrix.indptr, matrix.indices, matrix.data, x, out_v
            )
            numba_source_namespace["_spmm"](
                matrix.indptr, matrix.indices, matrix.data, big, out_m
            )
            # Bitwise: the loops accumulate in the same order and dtype
            # as scipy's csr kernels (stronger than the 1e-12 contract).
            np.testing.assert_array_equal(out_v, matrix @ x)
            np.testing.assert_array_equal(out_m, matrix @ big)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_push_loops_match_reference(
        self, numba_source_namespace, small_community, seed
    ):
        from repro.baselines.backward_push import backward_push
        from repro.baselines.forward_push import forward_push

        graph = small_community
        ref = forward_push(graph, seed, rmax=1e-4)
        indptr = graph.adjacency.indptr
        indices = graph.adjacency.indices
        degree = (indptr[1:] - indptr[:-1]).astype(np.int64)
        threshold = 1e-4 * np.maximum(degree, 1).astype(np.float64)
        estimate = np.zeros(graph.num_nodes)
        residual = np.zeros(graph.num_nodes)
        residual[seed] = 1.0
        pushes = numba_source_namespace["_forward_push"](
            indptr, indices, threshold, 0.15, seed, 50_000_000,
            estimate, residual,
        )
        assert pushes == ref.pushes
        np.testing.assert_array_equal(estimate, ref.estimate)
        np.testing.assert_array_equal(residual, ref.residual)

        back_ref = backward_push(graph, seed, rmax=1e-4)
        operator = graph.transition_transpose
        estimate = np.zeros(graph.num_nodes)
        residual = np.zeros(graph.num_nodes)
        residual[seed] = 1.0
        pushes = numba_source_namespace["_backward_push"](
            operator.indptr, operator.indices, operator.data, 1e-4, 0.15,
            seed, 50_000_000, estimate, residual,
        )
        assert pushes == back_ref.pushes
        np.testing.assert_array_equal(estimate, back_ref.estimate)
        np.testing.assert_array_equal(residual, back_ref.residual)

    def test_push_loop_single_node_self_loop(self, numba_source_namespace):
        """n=1 ring-buffer edge case: the write cursor must wrap to 0."""
        from repro.graph.graph import Graph

        graph = Graph(1, [0], [0], keep_self_loops=True)
        from repro.baselines.forward_push import forward_push

        ref = forward_push(graph, 0, rmax=1e-4)
        indptr = graph.adjacency.indptr
        estimate = np.zeros(1)
        residual = np.ones(1)
        pushes = numba_source_namespace["_forward_push"](
            indptr, graph.adjacency.indices, np.array([1e-4]), 0.15, 0,
            50_000_000, estimate, residual,
        )
        assert pushes == ref.pushes
        np.testing.assert_array_equal(estimate, ref.estimate)

    def test_max_pushes_overrun_returns_sentinel(
        self, numba_source_namespace, small_community
    ):
        graph = small_community
        indptr = graph.adjacency.indptr
        indices = graph.adjacency.indices
        degree = (indptr[1:] - indptr[:-1]).astype(np.int64)
        threshold = 1e-9 * np.maximum(degree, 1).astype(np.float64)
        estimate = np.zeros(graph.num_nodes)
        residual = np.zeros(graph.num_nodes)
        residual[0] = 1.0
        assert numba_source_namespace["_forward_push"](
            indptr, indices, threshold, 0.15, 0, 10, estimate, residual
        ) == -1


@pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)
class TestNumbaBackend:
    """Compiled kernels agree with the fallback to <= 1e-12."""

    @_SETTINGS
    @given(
        rows=st.integers(1, 60),
        cols=st.integers(1, 60),
        density=st.floats(0.0, 0.5),
        batch=st.integers(1, 6),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_agrees_with_numpy_fallback(self, rows, cols, density, batch, seed):
        rng = np.random.default_rng(seed)
        matrix = _random_csr(rng, rows, cols, density)
        x = rng.standard_normal(cols)
        big = rng.standard_normal((cols, batch))
        kernels.set_backend("numpy")
        ref_v, ref_m = kernels.spmv(matrix, x), kernels.spmm(matrix, big)
        kernels.set_backend("numba")
        np.testing.assert_allclose(
            kernels.spmv(matrix, x), ref_v, rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(
            kernels.spmm(matrix, big), ref_m, rtol=0, atol=1e-12
        )

    def test_push_loops_match_reference(self, small_community):
        from repro.baselines.backward_push import backward_push
        from repro.baselines.forward_push import forward_push

        kernels.set_backend("numpy")
        fwd_ref = forward_push(small_community, 3, rmax=1e-4)
        bwd_ref = backward_push(small_community, 5, rmax=1e-4)
        kernels.set_backend("numba")
        fwd = forward_push(small_community, 3, rmax=1e-4)
        bwd = backward_push(small_community, 5, rmax=1e-4)
        assert fwd.pushes == fwd_ref.pushes
        assert bwd.pushes == bwd_ref.pushes
        np.testing.assert_array_equal(fwd.estimate, fwd_ref.estimate)
        np.testing.assert_array_equal(fwd.residual, fwd_ref.residual)
        np.testing.assert_array_equal(bwd.estimate, bwd_ref.estimate)
        np.testing.assert_array_equal(bwd.residual, bwd_ref.residual)

    def test_query_results_close_to_fallback(self, small_community):
        kernels.set_backend("numpy")
        method = TPA(s_iteration=4, t_iteration=8)
        method.preprocess(small_community)
        reference = method.query_many(np.array([0, 7, 33]))
        kernels.set_backend("numba")
        method2 = TPA(s_iteration=4, t_iteration=8)
        method2.preprocess(small_community)
        np.testing.assert_allclose(
            method2.query_many(np.array([0, 7, 33])), reference,
            rtol=0, atol=1e-12,
        )


class TestForcedFallback:
    """Behavior when Numba is absent (simulated via the detection flag)."""

    def test_set_backend_numba_raises_without_numba(self, monkeypatch):
        monkeypatch.setattr(backend, "_NUMBA_INSTALLED", False)
        with pytest.raises(ParameterError, match="not installed"):
            kernels.set_backend("numba")

    def test_auto_selection_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setattr(backend, "_NUMBA_INSTALLED", False)
        kernels.set_backend("auto")
        assert kernels.get_backend() == "numpy"
        assert kernels.available_backends() == ("numpy",)
        assert not kernels.numba_available()

    def test_env_request_for_numba_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(backend, "_NUMBA_INSTALLED", False)
        monkeypatch.setenv("REPRO_KERNEL", "numba")
        with pytest.warns(UserWarning, match="NumPy fallback"):
            assert backend._resolve_env_backend() == "numpy"

    def test_push_loops_unavailable_on_numpy_backend(self):
        kernels.set_backend("numpy")
        assert kernels.forward_push_loop() is None
        assert kernels.backward_push_loop() is None

    def test_queries_still_exact_on_fallback(self, small_community):
        kernels.set_backend("numpy")
        method = CPIMethod()
        method.preprocess(small_community)
        batched = method.query_many(np.array([1, 2, 3]))
        stacked = np.stack([method.query(s) for s in (1, 2, 3)])
        np.testing.assert_array_equal(batched, stacked)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="unknown kernel backend"):
            kernels.set_backend("cuda")


class TestComputeDtypePolicy:
    def test_default_is_float64(self):
        assert kernels.compute_dtype() is np.float64
        assert kernels.cache_token().endswith(":float64")

    def test_float32_opt_in_changes_result_dtype(self, small_community):
        kernels.set_compute_dtype("float32")
        assert kernels.cache_token().endswith(":float32")
        result = cpi(small_community, 3)
        assert result.scores.dtype == np.float32

    def test_float32_error_within_documented_bound(self, small_community):
        reference = cpi(small_community, 3).scores
        kernels.set_compute_dtype("float32")
        low = cpi(small_community, 3).scores
        # The repro.kernels docstring documents <= ~1e-5 observed L1 gap
        # (unit-tested here at 5e-5).
        assert float(np.abs(low - reference).sum()) < 5e-5

    def test_float32_batch_matches_float32_single(self, small_community):
        kernels.set_compute_dtype("float32")
        method = TPA(s_iteration=4, t_iteration=8)
        method.preprocess(small_community)
        batched = method.query_many(np.array([0, 5, 9]))
        stacked = np.stack([method.query(s) for s in (0, 5, 9)])
        np.testing.assert_array_equal(batched, stacked)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ParameterError, match="float32 or float64"):
            kernels.set_compute_dtype("float16")


class TestWorkspace:
    def test_buffers_are_reused(self):
        ws = Workspace()
        first = ws.request("iterate", (16, 4))
        again = ws.request("iterate", (16, 4))
        assert first is again
        assert ws.nbytes() == 16 * 4 * 8

    def test_shape_change_reallocates_without_leaking(self):
        ws = Workspace()
        ws.request("iterate", (16, 4))
        bigger = ws.request("iterate", (16, 8))
        assert bigger.shape == (16, 8)
        assert ws.nbytes() == 16 * 8 * 8  # old buffer dropped, not retained

    def test_pair_returns_distinct_buffers(self):
        ws = Workspace()
        a, b = ws.pair("pingpong", (10,))
        assert a is not b
        a2, b2 = ws.pair("pingpong", (10,))
        assert a is a2 and b is b2

    def test_clear(self):
        ws = Workspace()
        ws.request("x", (8,))
        ws.clear()
        assert ws.nbytes() == 0

    def test_workspace_does_not_change_cpi_results(self, small_community):
        ws = Workspace()
        plain = cpi_many(small_community, np.array([2, 4, 6])).scores
        with_ws = cpi_many(
            small_community, np.array([2, 4, 6]), workspace=ws
        ).scores
        np.testing.assert_array_equal(plain, with_ws)
        assert ws.nbytes() > 0
        # Second call at the same batch shape reuses, not grows.
        before = ws.nbytes()
        cpi_many(small_community, np.array([1, 3, 5]), workspace=ws)
        assert ws.nbytes() == before


class TestRetainedBytesAccounting:
    """preprocessed_bytes must count the buffers the online phase keeps."""

    def test_tpa_counts_stranger_plus_retained_buffers(self, small_community):
        method = TPA(s_iteration=4, t_iteration=8)
        method.preprocess(small_community)
        n = small_community.num_nodes
        # Post-preprocess: exactly the stranger vector (preprocessing uses
        # throwaway buffers) — the Figure 1(a) figure.
        assert method.preprocessed_bytes() == n * 8
        method.query_many(np.array([0, 1, 2, 3]))
        grown = method.preprocessed_bytes()
        assert grown == n * 8 + method._workspace.nbytes()
        assert grown > n * 8
        # Stable across repeat queries at the same batch shape.
        method.query_many(np.array([4, 5, 6, 7]))
        assert method.preprocessed_bytes() == grown

    def test_cpi_counts_retained_buffers(self, small_community):
        method = CPIMethod()
        method.preprocess(small_community)
        assert method.preprocessed_bytes() == 0
        method.query(0)
        single = method.preprocessed_bytes()
        assert single == 2 * small_community.num_nodes * 8  # ping-pong pair
        method.query_many(np.array([0, 1, 2]))
        assert method.preprocessed_bytes() > single


class TestEngineCacheToken:
    """A float32 run must never be served a cached float64 vector."""

    def test_dtype_switch_bypasses_cache(self, small_community):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            small_community, cache_size=8,
        )
        full = engine.query(3)
        assert full.scores.dtype == np.float64
        assert engine.query(3).cached is True
        kernels.set_compute_dtype("float32")
        low = engine.query(3)
        assert low.cached is False  # distinct cache key, recomputed
        assert low.scores.dtype == np.float32
        # Switching back serves the original float64 entry again.
        kernels.set_compute_dtype("float64")
        back = engine.query(3)
        assert back.cached is True
        assert back.scores.dtype == np.float64
        np.testing.assert_array_equal(back.scores, full.scores)

    def test_backend_switch_bypasses_cache(self, small_community, monkeypatch):
        engine = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            small_community, cache_size=8,
        )
        engine.query(1)
        stats = engine.stats()
        assert stats["cache_misses"] == 1
        # A different token (any backend rename) must miss.
        monkeypatch.setattr(
            kernels.backend, "_active_backend", "other-backend"
        )
        engine.query(1)
        assert engine.stats()["cache_misses"] == 2


class TestLocalityReordering:
    def test_roundtrip_maps(self, medium_community):
        reordering = locality_reordering(medium_community)
        n = medium_community.num_nodes
        np.testing.assert_array_equal(
            reordering.to_original[reordering.to_reordered], np.arange(n)
        )
        assert reordering.graph.num_nodes == n
        assert reordering.graph.num_edges == medium_community.num_edges
        assert 0 < reordering.num_hubs < n

    def test_engine_reorder_matches_plain_scores(self, medium_community):
        plain = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community,
        )
        reordered = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community, reorder="slashburn",
        )
        for seed in (0, 17, 123):
            np.testing.assert_allclose(
                reordered.query(seed).scores, plain.query(seed).scores,
                rtol=1e-9, atol=1e-12,
            )

    def test_engine_reorder_top_k_in_original_ids(self, medium_community):
        plain = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community,
        )
        reordered = Engine(
            create_method("tpa", s_iteration=4, t_iteration=8),
            medium_community, reorder="slashburn",
        )
        a = plain.query(42, k=10, exclude_neighbors=True)
        b = reordered.query(42, k=10, exclude_neighbors=True)
        np.testing.assert_array_equal(a.top_nodes, b.top_nodes)
        np.testing.assert_allclose(a.top_scores, b.top_scores, rtol=1e-9)

    def test_engine_reorder_serve_maps_and_pads(self, tiny_ring):
        engine = Engine(create_method("cpi"), tiny_ring, reorder="slashburn")
        rankings = engine.serve([0], k=50)
        assert rankings.shape == (1, 50)
        assert (rankings[0, :9] >= 0).all()
        assert (rankings[0, 9:] == -1).all()  # padding untouched by the map
        plain = Engine(create_method("cpi"), tiny_ring)
        np.testing.assert_array_equal(
            plain.serve([0], k=50), rankings
        )

    def test_reorder_requires_graph(self, small_community):
        method = create_method("tpa", s_iteration=4, t_iteration=8)
        method.preprocess(small_community)
        with pytest.raises(ParameterError, match="reorder requires"):
            Engine(method, reorder="slashburn")

    def test_unknown_reorder_rejected(self, small_community):
        with pytest.raises(ParameterError, match="unknown reorder"):
            Engine(
                create_method("cpi"), small_community, reorder="rcm"
            )

    def test_engine_graph_property_is_original(self, medium_community):
        engine = Engine(
            create_method("cpi"), medium_community, reorder="slashburn"
        )
        assert engine.graph is medium_community
        assert engine.reordering is not None
        assert engine.method.graph is engine.reordering.graph
