"""Figure 10 benchmark (Appendix A) — TPA vs the exact BePI.

Paper shape: comparable preprocessing times; TPA's preprocessed data is
orders of magnitude smaller (up to 168×) and its online phase far faster
(up to 96×).
"""

from __future__ import annotations

import pytest

from repro.baselines.bepi import BePI
from repro.core.tpa import TPA

_CACHE: dict = {}


def _prepared(kind, graph, spec):
    key = (kind, id(graph))
    if key not in _CACHE:
        method = (
            TPA(s_iteration=spec.s_iteration, t_iteration=spec.t_iteration)
            if kind == "TPA"
            else BePI()
        )
        method.preprocess(graph)
        _CACHE[key] = method
    return _CACHE[key]


@pytest.mark.parametrize("kind", ["TPA", "BePI"])
def test_preprocessing(benchmark, kind, dataset_graph, dataset_spec):
    def run():
        method = TPA(
            s_iteration=dataset_spec.s_iteration,
            t_iteration=dataset_spec.t_iteration,
        ) if kind == "TPA" else BePI()
        method.preprocess(dataset_graph)
        return method

    method = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["preprocessed_bytes"] = method.preprocessed_bytes()


@pytest.mark.parametrize("kind", ["TPA", "BePI"])
def test_online(benchmark, kind, dataset_graph, dataset_spec, query_seeds):
    method = _prepared(kind, dataset_graph, dataset_spec)
    seed = int(query_seeds[0])
    result = benchmark(lambda: method.query(seed))
    assert result.shape == (dataset_graph.num_nodes,)


def test_tpa_smaller_and_faster_than_bepi(dataset_graph, dataset_spec, query_seeds):
    import time

    tpa = _prepared("TPA", dataset_graph, dataset_spec)
    bepi = _prepared("BePI", dataset_graph, dataset_spec)

    assert tpa.preprocessed_bytes() < bepi.preprocessed_bytes()

    def best_of(method):
        samples = []
        for seed in query_seeds[:3]:
            begin = time.perf_counter()
            method.query(int(seed))
            samples.append(time.perf_counter() - begin)
        return min(samples)

    assert best_of(tpa) < best_of(bepi)
