"""Figures 8 and 9 benchmark — parameter sweeps over S and T.

Paper shapes: online time rises and L1 error falls as S grows (Figure 8);
NA error rises and SA error falls as T grows, with the total TPA error
minimized at a moderate T (Figure 9).
"""

from __future__ import annotations

import pytest

from repro.core.parameters import sweep_s, sweep_t


@pytest.mark.parametrize("s_value", [2, 4, 6])
def test_fig8_online_time_vs_s(benchmark, s_value, dataset_graph):
    """One benchmark per S value: times the sweep point's online phase."""
    from repro.core.tpa import TPA

    method = TPA(s_iteration=s_value, t_iteration=10)
    method.preprocess(dataset_graph)

    result = benchmark(lambda: method.query(0))
    assert result.shape == (dataset_graph.num_nodes,)


def test_fig8_error_shape(benchmark, dataset_graph):
    points = benchmark.pedantic(
        lambda: sweep_s(dataset_graph, [2, 4, 6], t_iteration=10, num_seeds=5),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    errors = {p.value: p.l1_error for p in points}
    for s_value, error in errors.items():
        benchmark.extra_info[f"l1_error_S{s_value}"] = error
    assert errors[6] < errors[2]


def test_fig9_error_shape(benchmark, dataset_graph):
    points = benchmark.pedantic(
        lambda: sweep_t(
            dataset_graph, [5, 8, 12, 20], s_iteration=5, num_seeds=5
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    na = {p.value: p.neighbor_error for p in points}
    sa = {p.value: p.stranger_error for p in points}
    for t_value in na:
        benchmark.extra_info[f"na_error_T{t_value}"] = na[t_value]
        benchmark.extra_info[f"sa_error_T{t_value}"] = sa[t_value]
    assert na[20] > na[5]
    assert sa[20] < sa[5]
