#!/usr/bin/env python
"""Append one measured perf-trajectory entry to BENCH_kernels.json.

Runs the kernel microbenchmarks (SpMV / blocked SpMM on the transition
operator) and the end-to-end serving benchmark (batched TPA queries/sec,
looped queries/sec for contrast) on a synthetic community graph, then
appends a single JSON object — one line per run — to
``BENCH_kernels.json`` at the repository root::

    python benchmarks/record.py                # defaults: 20k nodes, B=64
    python benchmarks/record.py --nodes 50000 --batch 128
    REPRO_KERNEL=numpy python benchmarks/record.py   # record the fallback

Each entry carries the commit, backend, compute dtype, graph size, and
wall-times, so the perf trajectory of the kernel layer is diffable
across commits: filter to matching ``backend``/``graph`` fields and
compare ``queries_per_second_batched`` (end to end) or
``spmm_seconds``/``spmv_seconds`` (kernel level).  Timings are best-of-N
wall clock — the min filters scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-style invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import kernels  # noqa: E402
from repro.core.tpa import TPA  # noqa: E402
from repro.graph.generators import community_graph  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernels.json"


def _best_of(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return min(samples)


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(nodes: int, avg_degree: int, batch: int, repeats: int) -> dict:
    graph = community_graph(
        nodes, avg_degree=avg_degree,
        num_communities=max(8, nodes // 500), seed=7,
    )
    operator = graph.transition_transpose
    rng = np.random.default_rng(0)
    dtype = kernels.compute_dtype()

    vec = rng.random(graph.num_nodes).astype(dtype)
    vec_out = np.empty_like(vec)
    mat = rng.random((graph.num_nodes, batch)).astype(dtype)
    mat_out = np.empty_like(mat)
    operator_cast = graph.decayed_operator(1.0, dtype=dtype)

    kernels.spmv(operator_cast, vec, out=vec_out)  # warm-up / JIT compile
    kernels.spmm(operator_cast, mat, out=mat_out)
    spmv_seconds = _best_of(
        lambda: kernels.spmv(operator_cast, vec, out=vec_out), repeats
    )
    spmm_seconds = _best_of(
        lambda: kernels.spmm(operator_cast, mat, out=mat_out), repeats
    )

    method = TPA(s_iteration=5, t_iteration=10)
    begin = time.perf_counter()
    method.preprocess(graph)
    preprocess_seconds = time.perf_counter() - begin

    seeds = rng.choice(graph.num_nodes, size=batch, replace=False)
    method.query_many(seeds)  # warm caches and retained buffers
    batched_seconds = _best_of(lambda: method.query_many(seeds), repeats)
    looped_seconds = _best_of(
        lambda: [method.query(int(seed)) for seed in seeds],
        max(1, repeats // 3),
    )

    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "commit": _commit(),
        "backend": kernels.get_backend(),
        "compute_dtype": np.dtype(dtype).name,
        "graph": {
            "kind": "community",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "avg_degree": avg_degree,
        },
        "batch": int(batch),
        "spmv_seconds": spmv_seconds,
        "spmm_seconds": spmm_seconds,
        "preprocess_seconds": preprocess_seconds,
        "queries_per_second_batched": batch / batched_seconds,
        "queries_per_second_looped": batch / looped_seconds,
        "batched_over_looped_speedup": looped_seconds / batched_seconds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record a BENCH_kernels.json perf-trajectory entry"
    )
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument(
        "--backend", choices=("auto", "numba", "numpy"), default="auto",
        help="kernel backend to measure (default: auto-selected)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"JSON-lines file to append to (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    kernels.set_backend(None if args.backend == "auto" else args.backend)
    entry = measure(args.nodes, args.avg_degree, args.batch, args.repeats)

    with open(args.output, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")

    print(json.dumps(entry, indent=2))
    print(f"\nappended to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
