#!/usr/bin/env python
"""Append one measured perf-trajectory entry to BENCH_kernels.json.

Runs the kernel microbenchmarks (SpMV / blocked SpMM on the transition
operator) and the end-to-end serving benchmark (batched TPA queries/sec,
looped queries/sec for contrast) on a synthetic community graph, then
appends a single JSON object — one line per run — to
``BENCH_kernels.json`` at the repository root::

    python benchmarks/record.py                # defaults: 20k nodes, B=64
    python benchmarks/record.py --nodes 50000 --batch 128
    REPRO_KERNEL=numpy python benchmarks/record.py   # record the fallback

Each entry carries the commit, backend, compute dtype, tile height,
graph size, the machine fingerprint
(:func:`repro.tune.machine_fingerprint` — CPU model, core/NUMA
topology, cgroup quota, library versions), and wall-times, so the perf
trajectory of the kernel layer is diffable across commits: filter to
matching ``backend``/``graph``/``machine`` fields and compare ``queries_per_second_batched`` (end to end),
``spmm_seconds``/``spmv_seconds`` (kernel level),
``spmm_tiled_seconds`` vs ``spmm_reordered_seconds`` (the hub-aware
tiled schedule against the untiled product on the same
SlashBurn-reordered operator), or
``topk_queries_per_second_fused`` vs
``topk_queries_per_second_materialized`` (the streamed
``Engine.serve`` ranking pipeline against scoring the whole batch and
arg-partitioning row by row in Python), or
``serving_queries_per_second`` / ``serving_latency_p99_ms`` (the
concurrent serving stack: closed-loop clients against the
micro-batching ``repro.serving.Server`` with one Engine replica per
worker), or ``sharded_queries_per_second`` / ``sharded_latency_p99_ms``
(the same closed loop against the multi-process
``repro.sharding.Router``: shard worker processes over shared-memory
CSR row stripes), or ``updates_per_second`` vs
``updates_latency_p99_ms`` (the dynamic-serving trade-off: the same
closed loop while a mutator thread churns edges through a
``repro.dynamic.DynamicGraph`` with periodic compactions).  Timings are
best-of-N wall clock — the min filters scheduler noise; the serving
entries are one full closed-loop run after a warm-up wave.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-style invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import kernels  # noqa: E402
from repro.core.tpa import TPA  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.graph.generators import community_graph  # noqa: E402
from repro.method import banned_mask, select_top_k  # noqa: E402
from repro.dynamic import DynamicGraph, run_update_bench  # noqa: E402
from repro.serving import Server, run_closed_loop  # noqa: E402
from repro.sharding import Router  # noqa: E402
from repro.tune import machine_fingerprint  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernels.json"

#: Ranking width of the top-k throughput benchmark (the paper's serving
#: example is Twitter's top-500; 100 keeps the default graph realistic).
TOPK_K = 100


def _best_of(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return min(samples)


def materialized_topk(method, seeds, k):
    """The pre-streaming ranking path, kept as the benchmark baseline:
    materialize the full ``(B, n)`` score matrix, then arg-partition row
    by row in Python with a fresh mask per request.  The throughput test
    in ``test_batch_throughput.py`` measures against this same helper,
    so the recorded and asserted speedups share one definition."""
    matrix = method.query_many(seeds)
    return [
        select_top_k(
            matrix[row], k,
            banned_mask(method.graph, int(seed), True, False),
        )
        for row, seed in enumerate(seeds)
    ]


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(nodes: int, avg_degree: int, batch: int, repeats: int) -> dict:
    graph = community_graph(
        nodes, avg_degree=avg_degree,
        num_communities=max(8, nodes // 500), seed=7,
    )
    operator = graph.transition_transpose
    rng = np.random.default_rng(0)
    dtype = kernels.compute_dtype()

    vec = rng.random(graph.num_nodes).astype(dtype)
    vec_out = np.empty_like(vec)
    mat = rng.random((graph.num_nodes, batch)).astype(dtype)
    mat_out = np.empty_like(mat)
    operator_cast = graph.decayed_operator(1.0, dtype=dtype)

    kernels.spmv(operator_cast, vec, out=vec_out)  # warm-up / JIT compile
    kernels.spmm(operator_cast, mat, out=mat_out)
    spmv_seconds = _best_of(
        lambda: kernels.spmv(operator_cast, vec, out=vec_out), repeats
    )
    spmm_seconds = _best_of(
        lambda: kernels.spmm(operator_cast, mat, out=mat_out), repeats
    )

    # Tiled vs untiled on the SlashBurn-reordered operator: same rows,
    # same arithmetic, different execution schedule.
    reordering = kernels.locality_reordering(graph)
    tiling = reordering.spmm_tiling()
    operator_reordered = reordering.graph.decayed_operator(1.0, dtype=dtype)
    kernels.spmm(operator_reordered, mat, out=mat_out)  # warm-up
    kernels.spmm_tiled(operator_reordered, mat, out=mat_out, tiling=tiling)
    spmm_reordered_seconds = _best_of(
        lambda: kernels.spmm(operator_reordered, mat, out=mat_out), repeats
    )
    spmm_tiled_seconds = _best_of(
        lambda: kernels.spmm_tiled(
            operator_reordered, mat, out=mat_out, tiling=tiling
        ),
        repeats,
    )

    method = TPA(s_iteration=5, t_iteration=10)
    begin = time.perf_counter()
    method.preprocess(graph)
    preprocess_seconds = time.perf_counter() - begin

    seeds = rng.choice(graph.num_nodes, size=batch, replace=False)
    method.query_many(seeds)  # warm caches and retained buffers
    batched_seconds = _best_of(lambda: method.query_many(seeds), repeats)
    looped_seconds = _best_of(
        lambda: [method.query(int(seed)) for seed in seeds],
        max(1, repeats // 3),
    )

    # Fused streamed top-k (Engine.serve: block loop + compiled
    # select_top_k_many) against the materialize-then-argpartition path
    # it replaced.  Both sides take the min over the same repeat count —
    # a recorded ratio must not owe anything to sampling asymmetry.
    topk = min(TOPK_K, graph.num_nodes - 1)
    engine = Engine(method, stream_block=max(1, batch // 4))
    engine.serve(seeds, k=topk)  # warm-up (JIT + retained buffers)
    materialized_topk(method, seeds, topk)
    fused_seconds = _best_of(lambda: engine.serve(seeds, k=topk), repeats)
    materialized_seconds = _best_of(
        lambda: materialized_topk(method, seeds, topk), repeats
    )

    # Concurrent serving: closed-loop clients hammering the Server with
    # single-seed top-k requests.  The scheduler coalesces them into
    # micro-batches and per-worker Engine replicas answer in parallel —
    # the recorded q/s and p99 track the whole serving stack, not just
    # the kernels.  One warm-up wave sizes every replica's workspace.
    workers = max(1, min(4, os.cpu_count() or 1))
    clients = workers * 2
    with Server(
        method,
        workers=workers,
        max_batch=batch,
        max_wait_ms=2.0,
        max_pending=4096,
    ) as server:
        run_closed_loop(
            server, seeds, k=topk, clients=clients, requests_per_client=8,
        )
        report = run_closed_loop(
            server, seeds, k=topk, clients=clients,
            requests_per_client=max(32, batch),
        )

    # Sharded serving: the same closed loop against the multi-process
    # Router — shard worker processes over shared-memory CSR stripes
    # behind one dispatcher.  The method is already preprocessed, so the
    # Router adopts it; shards cut the serving operator uniformly (the
    # reordered cut is exercised by shard-bench --reorder in CI).
    shards = max(1, min(4, os.cpu_count() or 1))
    with Router(
        method,
        num_shards=shards,
        max_batch=batch,
        max_wait_ms=2.0,
        max_pending=4096,
    ) as router:
        run_closed_loop(
            router, seeds, k=topk, clients=clients, requests_per_client=8,
        )
        sharded = run_closed_loop(
            router, seeds, k=topk, clients=clients,
            requests_per_client=max(32, batch),
        )

    # Dynamic serving: the same closed loop against a Server whose graph
    # mutates underneath it — a mutator thread applies edge-update
    # batches with periodic compactions while clients query, so the
    # recorded sustained updates/sec and latency percentiles charge
    # every epoch-repair cost (re-preprocess, cache invalidation, warm
    # restarts) to the numbers the deployment actually observes.
    dynamic_graph = DynamicGraph(graph)
    dynamic_method = TPA(s_iteration=5, t_iteration=10)
    dynamic_method.preprocess(dynamic_graph)
    with Server(
        dynamic_method,
        dynamic_graph,
        workers=workers,
        max_batch=batch,
        max_wait_ms=2.0,
        max_pending=4096,
    ) as server:
        run_closed_loop(
            server, seeds, k=topk, clients=clients, requests_per_client=8,
        )
        updates = run_update_bench(
            server,
            dynamic_graph,
            seeds,
            k=topk,
            clients=clients,
            requests_per_client=max(32, batch),
            update_batch=8,
            compact_every=256,
        )

    def phase_fields(prefix: str, stats: dict) -> dict:
        """Flatten a deployment's per-phase breakdown (queue/dispatch/
        sweep/gather/select mean ms per batch) into trajectory fields,
        so phase-level regressions are diffable commit to commit just
        like the headline q/s numbers."""
        return {
            f"{prefix}_phase_{name}_mean_ms": info["mean_ms"]
            for name, info in sorted((stats.get("phases") or {}).items())
        }

    shard_stats = sharded.server_stats.get("shards") or {}

    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "commit": _commit(),
        "backend": kernels.get_backend(),
        "compute_dtype": np.dtype(dtype).name,
        # Trajectory entries are only comparable between runs whose
        # machine fingerprints match — filter on this before diffing q/s.
        "machine": machine_fingerprint().to_dict(),
        "graph": {
            "kind": "community",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "avg_degree": avg_degree,
        },
        "batch": int(batch),
        "tile_height": int(tiling.tile_height),
        "num_hubs": int(reordering.num_hubs),
        "spmv_seconds": spmv_seconds,
        "spmm_seconds": spmm_seconds,
        "spmm_reordered_seconds": spmm_reordered_seconds,
        "spmm_tiled_seconds": spmm_tiled_seconds,
        "tiled_over_untiled_speedup": spmm_reordered_seconds / spmm_tiled_seconds,
        "preprocess_seconds": preprocess_seconds,
        "queries_per_second_batched": batch / batched_seconds,
        "queries_per_second_looped": batch / looped_seconds,
        "batched_over_looped_speedup": looped_seconds / batched_seconds,
        "topk_k": int(topk),
        "topk_queries_per_second_fused": batch / fused_seconds,
        "topk_queries_per_second_materialized": batch / materialized_seconds,
        "fused_over_materialized_topk_speedup": (
            materialized_seconds / fused_seconds
        ),
        "serving_workers": workers,
        "serving_clients": clients,
        "serving_requests": report.requests,
        "serving_queries_per_second": report.queries_per_second,
        "serving_latency_p50_ms": report.latency_p50_ms,
        "serving_latency_p95_ms": report.latency_p95_ms,
        "serving_latency_p99_ms": report.latency_p99_ms,
        # Resilience counters (normally all zero in a clean run; a
        # non-zero value here flags a flaky host or a real regression in
        # the supervision/retry machinery).
        "serving_failures": report.server_stats.get("failures", 0),
        "serving_retries": report.server_stats.get("retries", 0),
        "serving_respawns": report.server_stats.get("respawns", 0),
        **phase_fields("serving", report.server_stats),
        "sharded_shards": shards,
        "sharded_requests": sharded.requests,
        "sharded_queries_per_second": sharded.queries_per_second,
        "sharded_latency_p50_ms": sharded.latency_p50_ms,
        "sharded_latency_p95_ms": sharded.latency_p95_ms,
        "sharded_latency_p99_ms": sharded.latency_p99_ms,
        "sharded_failures": sharded.server_stats.get("failures", 0),
        "sharded_retries": sharded.server_stats.get("retries", 0),
        "sharded_respawns": sharded.server_stats.get("respawns", 0),
        # Worker-pool-level counters from shard_stats(): process
        # respawns, bounded sweep retries, and the per-shard generation
        # numbers the store is serving at run end.
        "sharded_shard_respawns": int(shard_stats.get("respawns", 0)),
        "sharded_sweep_retries": int(shard_stats.get("sweep_retries", 0)),
        "sharded_republishes": int(shard_stats.get("republishes", 0)),
        "sharded_generations": [
            int(generation)
            for generation in shard_stats.get("generations", [])
        ],
        **phase_fields("sharded", sharded.server_stats),
        **updates.update_fields(),
        "updates_queries_per_second": updates.load.queries_per_second,
        "updates_latency_p50_ms": updates.load.latency_p50_ms,
        "updates_latency_p95_ms": updates.load.latency_p95_ms,
        "updates_latency_p99_ms": updates.load.latency_p99_ms,
        "updates_failures": updates.load.server_stats.get("failures", 0),
        "updates_retries": updates.load.server_stats.get("retries", 0),
        "updates_respawns": updates.load.server_stats.get("respawns", 0),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record a BENCH_kernels.json perf-trajectory entry"
    )
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument(
        "--backend", choices=("auto", "numba", "numpy"), default="auto",
        help="kernel backend to measure (default: auto-selected)",
    )
    parser.add_argument(
        "--tile", type=int, default=None,
        help="spoke-tile height in rows (default: REPRO_KERNEL_TILE or auto)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"JSON-lines file to append to (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    kernels.set_backend(None if args.backend == "auto" else args.backend)
    if args.tile is not None:
        kernels.set_tile_rows(args.tile)
    entry = measure(args.nodes, args.avg_degree, args.batch, args.repeats)

    with open(args.output, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")

    print(json.dumps(entry, indent=2))
    print(f"\nappended to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
