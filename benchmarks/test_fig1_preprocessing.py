"""Figure 1(a)/(b) benchmark — preprocessing time and preprocessed size.

Paper shape: TPA preprocesses fastest (up to 3.5× vs the next method) and
stores the least data (up to 40× less); each benchmark's ``extra_info``
records the preprocessed bytes so both panels come from one run.
"""

from __future__ import annotations

import pytest

from repro.baselines import BearApprox, Fora, HubPPR, NBLin
from repro.core.tpa import TPA


def _factories(spec):
    return {
        "TPA": lambda: TPA(
            s_iteration=spec.s_iteration, t_iteration=spec.t_iteration
        ),
        "FORA": lambda: Fora(seed=0),
        "BEAR_APPROX": lambda: BearApprox(),
        "HubPPR": lambda: HubPPR(seed=0, max_walks=50_000),
        "NB_LIN": lambda: NBLin(seed=0),
    }


@pytest.mark.parametrize("method_name", ["TPA", "FORA", "BEAR_APPROX", "HubPPR", "NB_LIN"])
def test_preprocessing(benchmark, method_name, dataset_graph, dataset_spec):
    factory = _factories(dataset_spec)[method_name]

    def run():
        method = factory()
        method.preprocess(dataset_graph)
        return method

    method = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["preprocessed_bytes"] = method.preprocessed_bytes()
    benchmark.extra_info["dataset_nodes"] = dataset_graph.num_nodes
    benchmark.extra_info["dataset_edges"] = dataset_graph.num_edges
    assert method.is_preprocessed


def test_tpa_stores_least(dataset_graph, dataset_spec):
    """The Figure 1(a) ordering, asserted rather than eyeballed."""
    sizes = {}
    for name, factory in _factories(dataset_spec).items():
        method = factory()
        method.preprocess(dataset_graph)
        sizes[name] = method.preprocessed_bytes()
    assert sizes["TPA"] == min(sizes.values())
    assert all(sizes[name] > sizes["TPA"] for name in sizes if name != "TPA")
