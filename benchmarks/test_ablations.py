"""Ablation benchmark — contribution of each TPA approximation.

DESIGN.md's ablation target: the full method must beat both
single-approximation variants on L1 error, quantifying the paper's
Section IV-C claim that the two approximations compensate each other.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ablation import ablation_errors


def test_ablation_errors(benchmark, dataset_graph, dataset_spec):
    rng = np.random.default_rng(3)
    seeds = rng.choice(dataset_graph.num_nodes, size=5, replace=False)

    # T tuned to the analogs (T = S + 1): Figure 9's optimum shifts left
    # at reduced scale, so the Table II T would understate the neighbor
    # approximation's contribution.
    tuned_t = dataset_spec.s_iteration + 1
    tpa, no_na, no_sa = benchmark.pedantic(
        lambda: ablation_errors(
            dataset_graph,
            dataset_spec.s_iteration,
            tuned_t,
            seeds,
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["tpa_error"] = tpa
    benchmark.extra_info["no_neighbor_approx_error"] = no_na
    benchmark.extra_info["no_stranger_approx_error"] = no_sa
    assert tpa <= no_na + 1e-9
    assert tpa <= no_sa + 1e-9
