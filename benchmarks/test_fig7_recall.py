"""Figure 7 benchmark — top-k recall of every method vs exact ground truth.

Paper shape: every method except NB-LIN reaches high recall; NB-LIN's
low-rank truncation costs accuracy.  Each benchmark times the query and
records recall@{100,500} in ``extra_info``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BRPPR, BearApprox, BePI, Fora, HubPPR, NBLin
from repro.core.tpa import TPA
from repro.metrics.accuracy import recall_at_k

_CACHE: dict = {}


def _context(graph, spec):
    key = id(graph)
    if key not in _CACHE:
        truth = BePI()
        truth.preprocess(graph)
        rng = np.random.default_rng(1)
        seeds = rng.choice(graph.num_nodes, size=3, replace=False)
        exact = {int(s): truth.query(int(s)) for s in seeds}
        _CACHE[key] = exact
    return _CACHE[key]


_METHODS = {
    "TPA": lambda spec: TPA(s_iteration=spec.s_iteration, t_iteration=spec.t_iteration),
    "BRPPR": lambda spec: BRPPR(),
    "FORA": lambda spec: Fora(seed=0),
    "BEAR_APPROX": lambda spec: BearApprox(),
    "HubPPR": lambda spec: HubPPR(seed=0, max_walks=50_000, refine_top=300),
    "NB_LIN": lambda spec: NBLin(seed=0),
}


@pytest.mark.parametrize("method_name", list(_METHODS))
def test_recall(benchmark, method_name, dataset_graph, dataset_spec):
    exact_by_seed = _context(dataset_graph, dataset_spec)
    method = _METHODS[method_name](dataset_spec)
    method.preprocess(dataset_graph)

    seeds = list(exact_by_seed)

    def run():
        return {seed: method.query(seed) for seed in seeds}

    approx_by_seed = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    for k in (100, 500):
        values = [
            recall_at_k(exact_by_seed[seed], approx_by_seed[seed], k)
            for seed in seeds
        ]
        benchmark.extra_info[f"recall@{k}"] = float(np.mean(values))

    # Figure 7's qualitative claim at reduced scale.
    recall_100 = benchmark.extra_info["recall@100"]
    if method_name == "NB_LIN":
        assert recall_100 > 0.1
    else:
        assert recall_100 > 0.75
