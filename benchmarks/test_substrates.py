"""Substrate micro-benchmarks.

Not paper artifacts, but they pin the cost of the building blocks every
experiment depends on: SpMV propagation, SlashBurn, partitioning, push
operators, walk sampling, and disk-striped propagation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.backward_push import backward_push
from repro.baselines.forward_push import forward_push
from repro.baselines.montecarlo import sample_walk_endpoints
from repro.graph.diskgraph import DiskGraph
from repro.graph.partition import partition_graph
from repro.graph.slashburn import slashburn


def test_propagate(benchmark, dataset_graph):
    x = np.random.default_rng(0).random(dataset_graph.num_nodes)
    y = benchmark(lambda: dataset_graph.propagate(x))
    assert y.sum() == pytest.approx(x.sum())


def test_slashburn(benchmark, dataset_graph):
    ordering = benchmark.pedantic(
        lambda: slashburn(dataset_graph),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["num_hubs"] = ordering.num_hubs
    benchmark.extra_info["num_blocks"] = len(ordering.blocks)
    assert ordering.permutation.size == dataset_graph.num_nodes


def test_partition(benchmark, dataset_graph):
    k = max(4, dataset_graph.num_nodes // 250)
    labels = benchmark.pedantic(
        lambda: partition_graph(dataset_graph, k, seed=0),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert labels.size == dataset_graph.num_nodes


def test_forward_push(benchmark, dataset_graph):
    result = benchmark(
        lambda: forward_push(dataset_graph, 0, rmax=1e-4)
    )
    benchmark.extra_info["pushes"] = result.pushes
    assert result.estimate.sum() > 0


def test_backward_push(benchmark, dataset_graph):
    result = benchmark(
        lambda: backward_push(dataset_graph, 0, rmax=1e-3)
    )
    benchmark.extra_info["pushes"] = result.pushes


def test_walk_sampling(benchmark, dataset_graph):
    starts = np.zeros(10_000, dtype=np.int64)
    rng = np.random.default_rng(0)
    stops = benchmark(
        lambda: sample_walk_endpoints(dataset_graph, starts, rng=rng)
    )
    assert stops.size == 10_000


def test_disk_propagate(benchmark, dataset_graph, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench_disk")
    disk = DiskGraph.build(dataset_graph, directory, rows_per_stripe=2048)
    x = np.random.default_rng(1).random(dataset_graph.num_nodes)
    y = benchmark(lambda: disk.propagate(x))
    np.testing.assert_allclose(y, dataset_graph.propagate(x), atol=1e-12)
