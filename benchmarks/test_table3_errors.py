"""Table III benchmark — measured errors vs theoretical bounds.

Paper shape: the neighbor and stranger approximation errors sit well below
their Lemma 3 / Lemma 1 bounds, and the total TPA error is far below the
Theorem 2 bound (the two approximations compensate).
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import neighbor_bound, stranger_bound, total_bound
from repro.experiments.table3 import measure_errors


def test_table3_errors(benchmark, dataset_graph, dataset_spec):
    rng = np.random.default_rng(2)
    seeds = rng.choice(dataset_graph.num_nodes, size=5, replace=False)
    s, t = dataset_spec.s_iteration, dataset_spec.t_iteration

    na_error, sa_error, tpa_error = benchmark.pedantic(
        lambda: measure_errors(dataset_graph, s, t, seeds),
        rounds=1, iterations=1, warmup_rounds=0,
    )

    benchmark.extra_info["na_error"] = na_error
    benchmark.extra_info["na_bound"] = neighbor_bound(0.15, s, t)
    benchmark.extra_info["sa_error"] = sa_error
    benchmark.extra_info["sa_bound"] = stranger_bound(0.15, t)
    benchmark.extra_info["tpa_error"] = tpa_error
    benchmark.extra_info["tpa_bound"] = total_bound(0.15, s)

    assert na_error <= neighbor_bound(0.15, s, t)
    assert sa_error <= stranger_bound(0.15, t)
    assert tpa_error <= total_bound(0.15, s)
    assert tpa_error <= na_error + sa_error
