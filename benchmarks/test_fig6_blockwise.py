"""Figure 6 benchmark — family drift on real-analog vs random graphs.

Paper shape: ‖Ā^S f − f‖₁ is lower on community-structured graphs than on
edge-count-matched random graphs.
"""

from __future__ import annotations

from repro.analysis.blockwise import family_drift_comparison


def test_family_drift_comparison(benchmark, dataset_graph):
    real, random_drift = benchmark.pedantic(
        lambda: family_drift_comparison(
            dataset_graph, s_iteration=5, num_seeds=10, rng=0
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["real_drift"] = real
    benchmark.extra_info["random_drift"] = random_drift
    assert real < random_drift
