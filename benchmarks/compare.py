#!/usr/bin/env python
"""Perf-regression gate over the ``BENCH_kernels.json`` trajectory.

The trajectory file is append-only JSON-lines: one measured entry per
run, stamped with the machine fingerprint, kernel backend, compute
dtype, and graph shape.  Entries are only comparable *within* a group
sharing all four — a CI runner's numbers say nothing about the
authoring container's — so this gate:

1. groups entries by ``(machine fingerprint, backend, dtype, graph,
   batch)``;
2. for each candidate entry, takes the trailing baseline — the
   **median of the last K comparable entries** (default 5) preceding
   it, metric by metric (the median absorbs one noisy run without
   hiding a trend);
3. computes the relative delta for every gated metric, honoring its
   direction — ``*_per_second``/``*_speedup`` must not drop,
   ``*_ms``/``*_seconds`` must not grow;
4. exits non-zero when any delta is worse than ``--threshold``
   (default 15%).

No comparable baseline (first entry of a group, a fresh CI runner) is
a **skip, loudly**: the gate prints a notice and exits 0 — an
unmatched fingerprint must not fail the build, and must not silently
pass as "compared".

Usage::

    python benchmarks/compare.py                        # gate the trajectory's own tail
    python benchmarks/compare.py --candidate fresh.json # gate freshly recorded entries
    python benchmarks/compare.py --json > report.json   # machine-readable report

Exit codes: 0 ok/skipped, 1 regression detected, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_INPUT = REPO_ROOT / "BENCH_kernels.json"
COMPARE_SCHEMA = "repro-bench-compare/1"

DEFAULT_THRESHOLD = 0.15
DEFAULT_WINDOW = 5

#: Metric-name prefixes the gate watches by default: end-to-end and
#: serving-stack throughput/latency.  Kernel-level seconds are noisy at
#: micro scale and already tracked by the recorded speedup ratios.
DEFAULT_PREFIXES = (
    "queries_per_second",
    "topk_queries_per_second",
    "serving_",
    "sharded_",
    "updates_",
)

#: Fingerprint fields that decide comparability.  ``affinity``/``numa``
#: are folded in deliberately: a 1-core container and a 4-core runner
#: on the same CPU model are different machines for throughput.
_MACHINE_FIELDS = (
    "cpu_model",
    "cpu_count",
    "affinity",
    "numa",
    "cgroup_quota",
    "backend",
    "dtype",
    "numba_version",
    "numpy_version",
)


def load_entries(path: Path) -> list[dict]:
    """Parse a JSON-lines trajectory file (one object per line)."""
    entries: list[dict] = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: not JSON ({error})") from error
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def group_key(entry: dict) -> str | None:
    """The comparability key, or ``None`` for entries too old to carry
    a machine fingerprint (they predate PR 7 and are never gated)."""
    machine = entry.get("machine")
    if not isinstance(machine, dict):
        return None
    graph = entry.get("graph") if isinstance(entry.get("graph"), dict) else {}
    return json.dumps(
        {
            "machine": {f: machine.get(f) for f in _MACHINE_FIELDS},
            "backend": entry.get("backend"),
            "dtype": entry.get("compute_dtype"),
            "graph": {
                f: graph.get(f)
                for f in ("kind", "nodes", "edges", "avg_degree")
            },
            "batch": entry.get("batch"),
        },
        sort_keys=True,
    )


def metric_direction(name: str) -> str | None:
    """``"higher"``/``"lower"``-is-better, or ``None`` for ungated
    fields (counters, shapes, identifiers)."""
    if "per_second" in name or name.endswith("_speedup"):
        return "higher"
    if name.endswith("_ms") or name.endswith("_seconds"):
        return "lower"
    return None


def compare_entry(
    candidate: dict,
    pool: list[dict],
    *,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    prefixes: tuple[str, ...] = DEFAULT_PREFIXES,
) -> dict:
    """Gate one candidate entry against its trailing baseline."""
    key = group_key(candidate)
    comparable = (
        [entry for entry in pool if group_key(entry) == key]
        if key is not None
        else []
    )
    baseline_pool = comparable[-window:]
    metrics: list[dict] = []
    for name in sorted(candidate):
        value = candidate[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not any(name.startswith(prefix) for prefix in prefixes):
            continue
        direction = metric_direction(name)
        if direction is None:
            continue
        baseline_values = [
            entry[name]
            for entry in baseline_pool
            if isinstance(entry.get(name), (int, float))
            and not isinstance(entry.get(name), bool)
        ]
        if not baseline_values:
            continue
        baseline = statistics.median(baseline_values)
        if baseline <= 0:
            continue
        delta = (value - baseline) / baseline
        regressed = (
            delta < -threshold if direction == "higher" else delta > threshold
        )
        metrics.append(
            {
                "metric": name,
                "direction": direction,
                "baseline": baseline,
                "baseline_entries": len(baseline_values),
                "candidate": value,
                "delta": delta,
                "regressed": regressed,
            }
        )
    return {
        "commit": candidate.get("commit"),
        "recorded_at": candidate.get("recorded_at"),
        "backend": candidate.get("backend"),
        "fingerprint_matched": bool(baseline_pool),
        "baseline_entries": len(baseline_pool),
        "metrics": metrics,
        "regressions": [row for row in metrics if row["regressed"]],
    }


def _format_row(row: dict) -> str:
    arrow = "↑" if row["direction"] == "higher" else "↓"
    status = "REGRESSED" if row["regressed"] else "ok"
    return (
        f"  {row['metric']:<44} {arrow} "
        f"{row['baseline']:>12.3f} -> {row['candidate']:>12.3f} "
        f"({row['delta']:+7.1%})  {status}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the perf trajectory regresses past a "
        "threshold (fingerprint-matched entries only)"
    )
    parser.add_argument(
        "--input", type=Path, default=DEFAULT_INPUT,
        help=f"trajectory file, JSON-lines (default {DEFAULT_INPUT})",
    )
    parser.add_argument(
        "--candidate", type=Path, default=None,
        help="entries to gate (JSON-lines, e.g. a CI-recorded artifact); "
        "default: the trajectory's own last entry vs its predecessors",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help="trailing comparable entries the baseline median spans "
        f"(default {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative delta that fails the gate "
        f"(default {DEFAULT_THRESHOLD:.2f} = 15%%)",
    )
    parser.add_argument(
        "--metrics", default=",".join(DEFAULT_PREFIXES),
        help="comma-separated metric-name prefixes to gate",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON on stdout",
    )
    args = parser.parse_args(argv)
    if args.window < 1:
        parser.error("--window must be at least 1")
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    prefixes = tuple(
        prefix.strip() for prefix in args.metrics.split(",") if prefix.strip()
    )

    try:
        trajectory = load_entries(args.input)
    except (OSError, ValueError) as error:
        print(f"error: cannot load {args.input}: {error}", file=sys.stderr)
        return 2
    if args.candidate is not None:
        try:
            candidates = load_entries(args.candidate)
        except (OSError, ValueError) as error:
            print(
                f"error: cannot load {args.candidate}: {error}",
                file=sys.stderr,
            )
            return 2
        pools = [trajectory] * len(candidates)
    else:
        if not trajectory:
            print("notice: empty trajectory; nothing to gate", file=sys.stderr)
            return 0
        candidates = [trajectory[-1]]
        pools = [trajectory[:-1]]
    if not candidates:
        print("notice: no candidate entries; nothing to gate", file=sys.stderr)
        return 0

    results = [
        compare_entry(
            candidate,
            pool,
            window=args.window,
            threshold=args.threshold,
            prefixes=prefixes,
        )
        for candidate, pool in zip(candidates, pools)
    ]
    regressions = sum(len(result["regressions"]) for result in results)
    matched = sum(1 for result in results if result["fingerprint_matched"])
    report = {
        "schema": COMPARE_SCHEMA,
        "input": str(args.input),
        "candidate": str(args.candidate) if args.candidate else None,
        "window": args.window,
        "threshold": args.threshold,
        "prefixes": list(prefixes),
        "candidates": len(results),
        "matched": matched,
        "regressions": regressions,
        "results": results,
    }

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for result in results:
            header = (
                f"candidate {result['commit'] or '?'} "
                f"[{result['backend'] or '?'}] "
                f"recorded {result['recorded_at'] or '?'}"
            )
            print(header)
            if not result["fingerprint_matched"]:
                print(
                    "  notice: no comparable baseline entries (machine "
                    "fingerprint / backend / graph unmatched) — skipped"
                )
                continue
            print(
                f"  baseline: median of last {result['baseline_entries']} "
                "comparable entr"
                + ("y" if result["baseline_entries"] == 1 else "ies")
            )
            for row in result["metrics"]:
                print(_format_row(row))

    if regressions:
        print(
            f"FAIL: {regressions} metric(s) regressed past "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    if matched == 0:
        print(
            "notice: no candidate matched a baseline fingerprint; "
            "gate skipped",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
