"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one of the paper's tables or figures (see
DESIGN.md §3).  Benchmarks run on reduced-scale analogs by default so the
whole suite finishes in minutes; set ``REPRO_BENCH_SCALE`` (e.g. ``1.0``)
for full-size analog runs.

Recorded ``extra_info`` fields carry the non-timing measurements (bytes,
recall, errors) so a single ``pytest benchmarks/ --benchmark-only`` run
reproduces both axes of each figure.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, load_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Datasets exercised per benchmark group: one small, one mid-sized.
BENCH_DATASETS = ("slashdot", "pokec")


@pytest.fixture(scope="session", params=BENCH_DATASETS)
def dataset_name(request):
    return request.param


@pytest.fixture(scope="session")
def dataset_graph(dataset_name):
    return load_dataset(dataset_name, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def dataset_spec(dataset_name):
    return DATASETS[dataset_name]


@pytest.fixture(scope="session")
def query_seeds(dataset_graph):
    rng = np.random.default_rng(0)
    return rng.choice(dataset_graph.num_nodes, size=5, replace=False)
