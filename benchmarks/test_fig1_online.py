"""Figure 1(c) benchmark — online query time per method.

Paper shape: TPA answers queries up to 30× faster than the other
approximate methods; HubPPR's whole-vector adaptation is the slowest.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines import BRPPR, BearApprox, Fora, HubPPR, NBLin
from repro.core.tpa import TPA

_PREPARED_CACHE: dict = {}


def _prepared(method_name, graph, spec):
    key = (method_name, id(graph))
    if key not in _PREPARED_CACHE:
        factories = {
            "TPA": lambda: TPA(
                s_iteration=spec.s_iteration, t_iteration=spec.t_iteration
            ),
            "BRPPR": lambda: BRPPR(),
            "FORA": lambda: Fora(seed=0),
            "BEAR_APPROX": lambda: BearApprox(),
            "HubPPR": lambda: HubPPR(seed=0, max_walks=50_000, refine_top=300),
            "NB_LIN": lambda: NBLin(seed=0),
        }
        method = factories[method_name]()
        method.preprocess(graph)
        _PREPARED_CACHE[key] = method
    return _PREPARED_CACHE[key]


_FAST = ["TPA", "BEAR_APPROX", "NB_LIN"]
_SLOW = ["BRPPR", "FORA", "HubPPR"]


@pytest.mark.parametrize("method_name", _FAST)
def test_online_fast_methods(benchmark, method_name, dataset_graph, dataset_spec, query_seeds):
    method = _prepared(method_name, dataset_graph, dataset_spec)
    # Endless cycle: pytest-benchmark calibrates its own call count, which
    # grows as queries get faster — a finite resized array can run dry.
    seed_cycle = itertools.cycle(query_seeds.tolist())

    result = benchmark(lambda: method.query(int(next(seed_cycle))))
    assert result.shape == (dataset_graph.num_nodes,)


@pytest.mark.parametrize("method_name", _SLOW)
def test_online_slow_methods(benchmark, method_name, dataset_graph, dataset_spec, query_seeds):
    method = _prepared(method_name, dataset_graph, dataset_spec)
    seed = int(query_seeds[0])

    result = benchmark.pedantic(
        lambda: method.query(seed), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.shape == (dataset_graph.num_nodes,)


def test_tpa_fastest_online(dataset_graph, dataset_spec, query_seeds):
    """The Figure 1(c) ordering: no method beats TPA online."""
    import time

    timings = {}
    for name in _FAST + _SLOW:
        method = _prepared(name, dataset_graph, dataset_spec)
        samples = []
        for seed in query_seeds[:3]:
            begin = time.perf_counter()
            method.query(int(seed))
            samples.append(time.perf_counter() - begin)
        timings[name] = min(samples)
    # BEAR and NB_LIN answer with a handful of (sparse/dense) matvecs and
    # can tie TPA within timing jitter on the sub-millisecond queries of
    # the reduced-scale benchmark graphs — the paper itself shows BEAR
    # tying TPA on Google.  The structurally slower methods must not win.
    for name, seconds in timings.items():
        if name in ("TPA", "BEAR_APPROX", "NB_LIN"):
            continue
        assert seconds >= timings["TPA"], (name, seconds, timings["TPA"])
    assert timings["NB_LIN"] >= 0.3 * timings["TPA"]
