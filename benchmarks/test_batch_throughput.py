"""Batched-vs-looped query throughput — the batched engine's headline win.

The PR that introduced ``PPRMethod.query_many`` promises that propagating a
whole seed matrix through the online iteration (one SpMM per step for the
batch) beats one Python-level ``query()`` per seed.  This file records
queries/sec for both paths so future PRs can track the gap, and asserts
the acceptance floor: a 64-seed TPA batch at least 3x faster than 64
sequential queries on a 5k-node community graph.

Timings use best-of-N wall clock (min filters scheduler noise); the
benchmark fixtures additionally record the distributions.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from record import materialized_topk

from repro import kernels
from repro.core.tpa import TPA
from repro.engine import Engine, QueryRequest
from repro.graph.generators import community_graph
from repro.serving import Server

BATCH = 64

#: The fused top-k benchmark's shape: a >= 100k-edge graph, a batch wide
#: enough that the full score matrix is a real materialization cost.
TOPK_BATCH = 256
TOPK_K = 100


@pytest.fixture(scope="module")
def throughput_setup():
    # Mean degree ~32 matches the paper's WikiLink analog (31.1); denser
    # graphs make the online phase SpMV/SpMM-bound, the serving regime the
    # batched engine targets.
    graph = community_graph(5_000, avg_degree=32, num_communities=40, seed=7)
    method = TPA(s_iteration=5, t_iteration=10)
    method.preprocess(graph)
    seeds = np.random.default_rng(0).choice(
        graph.num_nodes, size=BATCH, replace=False
    )
    # Warm both paths at full shape (page caches, the decayed-operator
    # cache, the SpMM scratch buffers).
    method.query_many(seeds)
    method.query(int(seeds[0]))
    return graph, method, seeds


def _best_of(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return min(samples)


def test_batched_queries_per_second(benchmark, throughput_setup):
    graph, method, seeds = throughput_setup
    result = benchmark(lambda: method.query_many(seeds))
    assert result.shape == (BATCH, graph.num_nodes)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["queries_per_second"] = (
            BATCH / benchmark.stats.stats.min
        )


def test_looped_queries_per_second(benchmark, throughput_setup):
    graph, method, seeds = throughput_setup
    result = benchmark.pedantic(
        lambda: [method.query(int(seed)) for seed in seeds],
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(result) == BATCH
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["queries_per_second"] = (
            BATCH / benchmark.stats.stats.min
        )


def test_batch_speedup_at_least_3x(throughput_setup):
    """Acceptance floor for the batched engine redesign.

    Wall-clock floors are taken as the min over repeats, and the whole
    measurement retries a few times before failing — scheduler noise on a
    busy box only ever inflates samples, so the min over attempts
    converges to the true ratio.
    """
    graph, method, seeds = throughput_setup
    best_speedup = 0.0
    looped_seconds = batched_seconds = 0.0
    for attempt in range(4):
        if attempt:
            time.sleep(2.0)  # ride out short contention windows
        looped_seconds = _best_of(
            lambda: [method.query(int(seed)) for seed in seeds], repeats=3
        )
        batched_seconds = _best_of(lambda: method.query_many(seeds), repeats=9)
        best_speedup = max(best_speedup, looped_seconds / batched_seconds)
        if best_speedup >= 3.3:
            break
    assert best_speedup >= 3.0, (
        f"batched {BATCH}-seed TPA must be >= 3x faster than looped "
        f"queries; got {best_speedup:.2f}x "
        f"(last attempt: looped {looped_seconds * 1e3:.1f} ms, "
        f"batched {batched_seconds * 1e3:.1f} ms)"
    )


def test_batch_results_match_looped(throughput_setup):
    """The speedup is free of accuracy cost: identical score matrices."""
    _, method, seeds = throughput_setup
    matrix = method.query_many(seeds)
    stacked = np.stack([method.query(int(seed)) for seed in seeds])
    np.testing.assert_allclose(matrix, stacked, rtol=1e-12, atol=1e-15)


@pytest.fixture(scope="module")
def fused_topk_setup():
    """A >= 100k-edge serving setup where ranking cost matters: short TPA
    online phase (S=3), wide batch, top-100 requests."""
    graph = community_graph(25_000, avg_degree=8, num_communities=64, seed=3)
    assert graph.num_edges >= 100_000
    method = TPA(s_iteration=3, t_iteration=6)
    method.preprocess(graph)
    seeds = np.random.default_rng(0).choice(
        graph.num_nodes, size=TOPK_BATCH, replace=False
    )
    requests = [QueryRequest(seed=int(seed), k=TOPK_K) for seed in seeds]
    engine = Engine(method, stream_block=TOPK_BATCH // 4)
    # Warm both paths (JIT compilation, retained workspace buffers, the
    # decayed-operator cache).  The materialized baseline is the shared
    # helper from record.py, so the asserted and recorded speedups
    # measure the same thing.
    engine.batch(requests)
    materialized_topk(method, seeds, TOPK_K)
    return graph, method, engine, seeds, requests


def test_fused_topk_matches_materialized(fused_topk_setup):
    """Correctness of the streamed schedule on every backend: the fused
    Engine.batch / Engine.serve rankings equal the materialized loop."""
    graph, method, engine, seeds, requests = fused_topk_setup
    reference = materialized_topk(method, seeds, TOPK_K)
    results = engine.batch(requests)
    rankings = engine.serve(seeds, k=TOPK_K)
    for row, (result, picks) in enumerate(zip(results, reference)):
        np.testing.assert_array_equal(result.top_nodes, picks)
        np.testing.assert_array_equal(rankings[row, : picks.size], picks)
        assert (rankings[row, picks.size:] == -1).all()


@pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed; the compiled selection kernel cannot run",
)
def test_fused_topk_at_least_1p5x_materialized(fused_topk_setup):
    """Acceptance floor for the blocked ranking pipeline: streamed
    Engine.batch over top-k requests >= 1.5x the
    materialize-then-argpartition path on a >= 100k-edge graph.

    The win is the fused compiled selection plus never touching the full
    (B, n) matrix; like the other wall-clock floors this takes min over
    repeats with a few retry attempts.
    """
    import numba

    if numba.get_num_threads() < 2:
        pytest.skip("single-threaded runtime: no parallel win to measure")

    graph, method, engine, seeds, requests = fused_topk_setup
    best_speedup = 0.0
    fused_seconds = materialized_seconds = 0.0
    for attempt in range(4):
        if attempt:
            time.sleep(2.0)  # ride out short contention windows
        materialized_seconds = _best_of(
            lambda: materialized_topk(method, seeds, TOPK_K), repeats=3
        )
        fused_seconds = _best_of(lambda: engine.batch(requests), repeats=3)
        best_speedup = max(best_speedup, materialized_seconds / fused_seconds)
        if best_speedup >= 1.65:
            break
    assert best_speedup >= 1.5, (
        f"streamed top-{TOPK_K} Engine.batch must be >= 1.5x the "
        f"materialize-then-argpartition path on {graph.num_edges} edges; "
        f"got {best_speedup:.2f}x (fused {fused_seconds * 1e3:.1f} ms, "
        f"materialized {materialized_seconds * 1e3:.1f} ms)"
    )


@pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed; the compiled selection kernel cannot run",
)
def test_server_coalescing_beats_serial_single_queries(throughput_setup):
    """Acceptance floor for the serving subsystem: N threads issuing
    single-seed top-k requests through the micro-batching Server beat N
    serial single-request ``Engine.query`` calls.

    The win is structural — the scheduler coalesces the concurrent
    singles into micro-batches (the measured ~4x batched online pass)
    and per-worker Engine replicas overlap on separate cores — so it
    must survive even the thread-scheduling overhead of ``BATCH``
    client threads.  Wall-clock floors are min over repeats with retry
    attempts, like every other floor in this file.
    """
    import numba

    if numba.get_num_threads() < 2:
        pytest.skip("single-threaded runtime: no parallel win to measure")

    graph, method, seeds = throughput_setup
    serial_engine = Engine(method)
    serial_engine.query(int(seeds[0]), k=TOPK_K)  # warm the ranking path

    def serial_pass():
        for seed in seeds:
            serial_engine.query(int(seed), k=TOPK_K)

    with Server(
        method, workers=2, max_batch=BATCH, max_wait_ms=5.0,
        max_pending=4 * BATCH,
    ) as server:

        def concurrent_pass():
            threads = [
                threading.Thread(
                    target=lambda s=int(seed): server.query(s, k=TOPK_K),
                    daemon=True,
                )
                for seed in seeds
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        concurrent_pass()  # warm every replica's workspace + JIT
        best_speedup = 0.0
        best_serial = best_concurrent = 0.0
        for attempt in range(4):
            if attempt:
                time.sleep(2.0)  # ride out short contention windows
            serial_seconds = _best_of(serial_pass, repeats=3)
            concurrent_seconds = _best_of(concurrent_pass, repeats=3)
            if serial_seconds / concurrent_seconds > best_speedup:
                # Keep the timings of the *winning* attempt so a failure
                # message never pairs one attempt's ratio with
                # another's numbers.
                best_speedup = serial_seconds / concurrent_seconds
                best_serial = serial_seconds
                best_concurrent = concurrent_seconds
            if best_speedup >= 1.4:
                break
    assert best_speedup >= 1.2, (
        f"{BATCH} concurrent single-seed requests through the Server must "
        f"beat {BATCH} serial Engine.query calls; got {best_speedup:.2f}x "
        f"(serial {best_serial * 1e3:.1f} ms, "
        f"concurrent {best_concurrent * 1e3:.1f} ms)"
    )


def test_observability_overhead_within_generous_floor(throughput_setup):
    """Acceptance floor for the observability layer: serving with the
    default instrumentation (metrics on, tracing off) keeps at least
    60% of the throughput of a metrics-off run.

    The real gap is ~1 µs of counter updates against millisecond-scale
    requests — well under 2% — but thread scheduling noise on a shared
    runner dwarfs that, so the floor is deliberately generous and the
    measurement is min-over-repeats on both sides.  What this actually
    guards is an accidental per-request ``expose()``, env read, or lock
    convoy sneaking onto the serving hot path.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.serving.loadgen import run_closed_loop

    graph, method, seeds = throughput_setup
    assert not obs_trace.tracing_enabled()

    def closed_loop(server):
        return run_closed_loop(
            server, seeds, k=TOPK_K, clients=4, requests_per_client=16,
            keep_samples=False,
        )

    def measure() -> float:
        with Server(
            method, workers=2, max_batch=BATCH, max_wait_ms=2.0,
            max_pending=4 * BATCH,
        ) as server:
            closed_loop(server)  # warm replicas + JIT
            return max(
                closed_loop(server).queries_per_second for _ in range(3)
            )

    instrumented = measure()
    obs_metrics.set_metrics_enabled(False)
    try:
        bare = measure()
    finally:
        obs_metrics.set_metrics_enabled(None)
    assert instrumented >= 0.6 * bare, (
        f"metrics-on serving throughput {instrumented:.1f} q/s fell below "
        f"60% of the metrics-off {bare:.1f} q/s"
    )


@pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed; the compiled backend cannot run",
)
def test_numba_spmm_at_least_2x_numpy_fallback():
    """Acceptance floor for the compiled kernel layer: the thread-parallel
    Numba SpMM beats the single-threaded NumPy fallback by >= 2x on a
    >= 100k-edge synthetic graph.

    The win is thread parallelism, so the test is skipped (not failed)
    when the runtime offers a single thread; wall-clock floors are min
    over repeats with a few attempts, as in the batch-speedup test.
    """
    import numba

    if numba.get_num_threads() < 2:
        pytest.skip("single-threaded runtime: no parallel win to measure")

    graph = community_graph(25_000, avg_degree=8, num_communities=64, seed=3)
    assert graph.num_edges >= 100_000
    operator = graph.transition_transpose
    x = np.random.default_rng(0).random((graph.num_nodes, 32))
    out = np.empty_like(x)

    previous = kernels.get_backend()
    best_speedup = 0.0
    numba_seconds = numpy_seconds = 0.0
    try:
        for attempt in range(4):
            if attempt:
                time.sleep(1.0)  # ride out short contention windows
            kernels.set_backend("numba")
            kernels.spmm(operator, x, out=out)  # JIT warm-up / code cache
            numba_seconds = _best_of(
                lambda: kernels.spmm(operator, x, out=out), repeats=5
            )
            kernels.set_backend("numpy")
            kernels.spmm(operator, x, out=out)
            numpy_seconds = _best_of(
                lambda: kernels.spmm(operator, x, out=out), repeats=5
            )
            best_speedup = max(best_speedup, numpy_seconds / numba_seconds)
            if best_speedup >= 2.2:
                break
    finally:
        kernels.set_backend(previous)
    assert best_speedup >= 2.0, (
        f"numba SpMM must be >= 2x the numpy fallback on "
        f"{graph.num_edges} edges x 32 columns; got {best_speedup:.2f}x "
        f"(numba {numba_seconds * 1e3:.1f} ms, "
        f"numpy {numpy_seconds * 1e3:.1f} ms)"
    )
