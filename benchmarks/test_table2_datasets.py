"""Table II benchmark — analog dataset generation.

Not a paper measurement per se, but it pins the cost of the substrate the
other benchmarks stand on and records the realized graph statistics.
"""

from __future__ import annotations

import os

from repro.graph.datasets import DATASETS
from repro.graph.generators import community_graph

_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


def test_generate_analog(benchmark, dataset_name):
    spec = DATASETS[dataset_name]
    n = max(64, int(round(spec.analog_nodes * _BENCH_SCALE)))

    graph = benchmark.pedantic(
        lambda: community_graph(
            n,
            avg_degree=spec.avg_degree,
            num_communities=max(8, n // 125),
            p_in=spec.p_in(),
            reciprocity=spec.reciprocity(),
            seed=spec.seed,
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["S"] = spec.s_iteration
    benchmark.extra_info["T"] = spec.t_iteration
    assert graph.num_nodes == n
    assert graph.dangling_nodes.size == 0
