"""Figures 3 and 4 benchmark — matrix-power densification and C_i.

Paper shape: nnz((Ã^T)^i) grows sharply with i (Figure 3 / 4(a)) while the
column-difference statistic C_i falls (Figure 4(b)).
"""

from __future__ import annotations

import pytest

from repro.analysis.matrix_power import (
    block_density_grid,
    column_difference_statistic,
    matrix_power_nnz,
)

_POWERS = [1, 3, 5, 7]


def test_matrix_power_nnz(benchmark, dataset_graph):
    nnz = benchmark.pedantic(
        lambda: matrix_power_nnz(dataset_graph, _POWERS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    for i in _POWERS:
        benchmark.extra_info[f"nnz_power_{i}"] = nnz[i]
    assert nnz[1] < nnz[7]


def test_column_difference_statistic(benchmark, dataset_graph):
    stats = benchmark.pedantic(
        lambda: column_difference_statistic(
            dataset_graph, _POWERS, num_seeds=10, rng=0
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    for i in _POWERS:
        benchmark.extra_info[f"C_{i}"] = stats[i]
    assert stats[7] < stats[1]
    assert all(0.0 <= value <= 2.0 for value in stats.values())


def test_block_density_grid(benchmark, dataset_graph):
    grid = benchmark.pedantic(
        lambda: block_density_grid(dataset_graph, 3, grid=16),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert grid.shape == (16, 16)
    assert grid.sum() > dataset_graph.num_edges
